//! The whole-GPU model: SMs, two crossbars, memory partitions, the CTA
//! dispatcher, and the simulation integrity layer (forward-progress
//! watchdog, structural invariant audits, hang forensics).

use crate::assist::LineStore;
use crate::config::{ConfigError, Design, GpuConfig};
use crate::fault::{stream, FaultInjector, FaultMode};
use crate::integrity::{Component, HangReport, Violation};
use crate::mempart::{PartReq, PartResp, Partition, SizeOracle};
use crate::sm::{SharedState, Sm};
use crate::stats::RunStats;
use crate::trace::{ActivityTrace, Sample, Tracer};
use caba_isa::Kernel;
use caba_mem::{CompressionMap, Crossbar, FuncMem, LINE_SIZE};
use caba_stats::FxHashMap;
use std::fmt;

/// Error returned by [`Gpu::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The kernel did not finish within the cycle budget.
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
        /// Machine state at the moment the budget ran out.
        report: Box<HangReport>,
    },
    /// The forward-progress watchdog saw no counter advance for a full
    /// window — the machine is wedged (usually a barrier deadlock or a lost
    /// request).
    Hang {
        /// Cycles simulated before the hang was declared.
        cycles: u64,
        /// The watchdog window that elapsed without progress.
        window: u64,
        /// Machine state at the moment the hang was declared.
        report: Box<HangReport>,
    },
    /// A structural invariant audit found violations.
    AuditFailed {
        /// Cycle the audit ran.
        cycle: u64,
        /// Every violation found, each naming the faulting component.
        violations: Vec<Violation>,
    },
}

impl RunError {
    /// The attached machine-state snapshot, when the failure carries one.
    pub fn report(&self) -> Option<&HangReport> {
        match self {
            RunError::Timeout { report, .. } | RunError::Hang { report, .. } => Some(report),
            RunError::AuditFailed { .. } => None,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Timeout { cycles, report } => {
                writeln!(f, "kernel did not complete within {cycles} cycles")?;
                write!(f, "{report}")
            }
            RunError::Hang {
                cycles,
                window,
                report,
            } => {
                writeln!(
                    f,
                    "no forward progress for {window} cycles (aborted at cycle {cycles})"
                )?;
                write!(f, "{report}")
            }
            RunError::AuditFailed { cycle, violations } => {
                writeln!(
                    f,
                    "invariant audit at cycle {cycle} found {} violation(s):",
                    violations.len()
                )?;
                for v in violations {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Where an in-flight read currently is, per the request ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Between the SM and the partition (inside the request crossbar).
    RequestXbar,
    /// Inside the memory partition (queues, MSHRs, DRAM).
    Partition,
    /// Between the partition and the SM (inside the response crossbar).
    ResponseXbar,
}

#[derive(Debug, Clone, Copy)]
struct LedgerEntry {
    issued_at: u64,
    stage: Stage,
}

/// The simulated GPU.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    design: Design,
    mem: FuncMem,
    cmap: Option<CompressionMap>,
    line_store: LineStore,
    sms: Vec<Sm>,
    parts: Vec<Partition>,
    xbar_fwd: Crossbar<PartReq>,
    xbar_rsp: Crossbar<PartResp>,
    now: u64,
    tracer: Option<Tracer>,
    /// Every in-flight read, keyed by `(sm, line)`, with the stage the GPU
    /// last moved it into. The invariant audit checks that the recorded
    /// stage actually carries each request. Uses the deterministic in-repo
    /// [`FxHashMap`]: insert/remove runs on every memory access, and no
    /// iteration order escapes into architectural state (the audit sorts
    /// its violations).
    ledger: FxHashMap<(usize, u64), LedgerEntry>,
    xbar_injector: FaultInjector,
    audits_run: u64,
    flits_dropped: u64,
    flit_retransmissions: u64,
}

impl Gpu {
    /// Builds a GPU for one design point.
    ///
    /// # Panics
    ///
    /// Panics when `cfg` is inconsistent; use [`Gpu::try_new`] to handle
    /// [`ConfigError`] instead.
    pub fn new(cfg: GpuConfig, design: Design) -> Self {
        Self::try_new(cfg, design).unwrap_or_else(|e| panic!("invalid GpuConfig: {e}"))
    }

    /// Builds a GPU for one design point, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by
    /// [`GpuConfig::validate`].
    pub fn try_new(cfg: GpuConfig, design: Design) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let cmap = design.mem_compressed().then(|| match &design {
            Design::Caba(c) => CompressionMap::new(c.selector()),
            d => CompressionMap::new(caba_mem::func::LineCompressor::Fixed(
                d.algorithm().expect("compressed design has an algorithm"),
            )),
        });
        let with_md = design.mem_compressed();
        Ok(Gpu {
            cfg,
            mem: FuncMem::new(),
            cmap,
            line_store: LineStore::new(),
            sms: (0..cfg.num_sms).map(|i| Sm::new(i, cfg)).collect(),
            parts: (0..cfg.num_channels)
                .map(|i| Partition::new(i, cfg, with_md))
                .collect(),
            xbar_fwd: Crossbar::new(cfg.num_sms, cfg.num_channels, cfg.icnt_latency),
            xbar_rsp: Crossbar::new(cfg.num_channels, cfg.num_sms, cfg.icnt_latency),
            now: 0,
            tracer: None,
            design,
            ledger: FxHashMap::default(),
            xbar_injector: FaultInjector::for_stream(cfg.fault, stream::CROSSBAR),
            audits_run: 0,
            flits_dropped: 0,
            flit_retransmissions: 0,
        })
    }

    /// Enables activity tracing: every `interval` cycles a [`Sample`] of
    /// per-SM issue counts and DRAM utilization is recorded. Retrieve the
    /// trace with [`Gpu::take_trace`] after `run`.
    pub fn enable_tracing(&mut self, interval: u64) {
        self.tracer = Some(Tracer::new(interval, self.cfg.num_sms));
    }

    /// Takes the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<ActivityTrace> {
        self.tracer.take().map(|t| t.trace)
    }

    fn trace_tick(&mut self) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        if self.now - tr.last_cycle < tr.interval {
            return;
        }
        let mut app = Vec::with_capacity(self.sms.len());
        let mut assist = Vec::with_capacity(self.sms.len());
        for (i, sm) in self.sms.iter().enumerate() {
            app.push(sm.app_instructions() - tr.last_app[i]);
            assist.push(sm.assist_instructions() - tr.last_assist[i]);
            tr.last_app[i] = sm.app_instructions();
            tr.last_assist[i] = sm.assist_instructions();
        }
        let (mut busy, mut total) = (0u64, 0u64);
        for p in &mut self.parts {
            // Quiesced partitions are clock-skipped by the run loop; repay
            // the lag so the sampled utilization denominator is exact.
            p.catch_up(self.now);
            let d = p.dram_stats();
            busy += d.bus_busy_cycles;
            total += d.total_cycles;
        }
        tr.trace.samples.push(Sample {
            cycle: self.now,
            app_issued: app,
            assist_issued: assist,
            dram_busy: busy - tr.last_dram_busy,
            dram_total: total - tr.last_dram_total,
        });
        tr.last_dram_busy = busy;
        tr.last_dram_total = total;
        tr.last_cycle = self.now;
    }

    /// The functional memory (read-only view).
    pub fn mem(&self) -> &FuncMem {
        &self.mem
    }

    /// The functional memory, mutable (for loading input images).
    pub fn mem_mut(&mut self) -> &mut FuncMem {
        &mut self.mem
    }

    /// Copies input data into device memory (the host→device transfer; with
    /// compressed designs the data is considered software-pre-compressed at
    /// this point, §4.3.1).
    pub fn load_image(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.load_image(addr, bytes);
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The design point.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// A value that changes whenever any part of the machine makes forward
    /// progress. Built from monotone counters only, so an unchanged value
    /// over a whole watchdog window proves the machine is wedged.
    fn progress_signature(&self) -> u64 {
        let mut sig = 0u64;
        for sm in &self.sms {
            sig = sig.wrapping_add(sm.progress_signature());
        }
        for p in &self.parts {
            let d = p.dram_stats();
            sig = sig
                .wrapping_add(p.l2_hits())
                .wrapping_add(p.l2_misses())
                .wrapping_add(d.bursts)
                .wrapping_add(d.reads)
                .wrapping_add(d.writes);
        }
        sig.wrapping_add(self.xbar_fwd.total_flits())
            .wrapping_add(self.xbar_rsp.total_flits())
    }

    /// Runs the full structural invariant audit.
    fn audit(&self, cycle: u64) -> Vec<Violation> {
        let mut out = Vec::new();

        // Request conservation: the stage the ledger last moved each read
        // into must actually carry it. The ledger is iterated in hash order
        // and only the (rare) violations are collected and sorted, instead
        // of materializing and sorting the whole ledger on every audit.
        let mut bad: Vec<(usize, u64, u64, Component)> = Vec::new();
        for (&(sm, line), entry) in &self.ledger {
            let (carried, component) = match entry.stage {
                Stage::RequestXbar => (
                    self.xbar_fwd
                        .in_flight()
                        .any(|r| !r.is_write && r.sm == sm && r.addr == line),
                    Component::CrossbarRequest,
                ),
                Stage::Partition => {
                    let dst = ((line / LINE_SIZE as u64) % self.parts.len() as u64) as usize;
                    (
                        self.parts[dst].carries_read(sm, line),
                        Component::Partition(dst),
                    )
                }
                Stage::ResponseXbar => (
                    self.xbar_rsp
                        .in_flight()
                        .any(|r| r.sm == sm && r.addr == line),
                    Component::CrossbarResponse,
                ),
            };
            if !carried {
                bad.push((sm, line, entry.issued_at, component));
            }
        }
        bad.sort_unstable_by_key(|&(sm, line, _, _)| (sm, line));
        for (sm, line, issued_at, component) in bad {
            out.push(Violation {
                cycle,
                component,
                detail: format!(
                    "read of line {line:#x} for SM {sm} (issued cycle {issued_at}) vanished"
                ),
            });
        }

        // SM-side conservation: every outstanding L1 MSHR line must still
        // have a carrier (queued at the SM or in the ledger).
        for sm in &self.sms {
            for line in sm.mshr_lines() {
                if !sm.has_out_req(line) && !self.ledger.contains_key(&(sm.id(), line)) {
                    out.push(Violation {
                        cycle,
                        component: Component::Sm(sm.id()),
                        detail: format!(
                            "L1 MSHR waits on line {line:#x} but no request is in flight"
                        ),
                    });
                }
            }
        }

        // Occupancy bounds and scoreboard/SIMT consistency.
        for sm in &self.sms {
            sm.audit_into(cycle, &mut out);
        }
        for p in &self.parts {
            p.audit_into(cycle, &mut out);
        }

        // Compressed-line round-trip verification.
        if let Some(cmap) = &self.cmap {
            for addr in cmap.audit_round_trips(&self.mem, 0) {
                out.push(Violation {
                    cycle,
                    component: Component::CompressionMap,
                    detail: format!(
                        "cached compressed form of line {addr:#x} no longer round-trips"
                    ),
                });
            }
        }
        out
    }

    /// Repays the clock of every quiesced (skipped) partition so DRAM
    /// cycle counters are exact. Must run before anything reads
    /// `dram_stats().total_cycles`: trace samples, hang forensics, and
    /// final stats collection.
    fn catch_up_parts(&mut self) {
        let now = self.now;
        for p in &mut self.parts {
            p.catch_up(now);
        }
    }

    /// Builds the forensic snapshot attached to timeout/hang errors.
    fn hang_report(&self, kernel: &Kernel, ctas_dispatched: u32, grid: u32) -> HangReport {
        HangReport {
            cycle: self.now,
            window: self.cfg.watchdog_window,
            ctas_dispatched: ctas_dispatched as usize,
            grid_ctas: grid as usize,
            sms: self
                .sms
                .iter()
                .map(|s| s.snapshot(self.now, kernel))
                .collect(),
            partitions: self.parts.iter().map(|p| p.snapshot()).collect(),
            xbar_fwd_in_flight: self.xbar_fwd.in_flight().count(),
            xbar_rsp_in_flight: self.xbar_rsp.in_flight().count(),
            oldest_request: self
                .ledger
                .iter()
                .map(|(&(sm, line), e)| (self.now.saturating_sub(e.issued_at), sm, line))
                .max_by_key(|&(age, sm, line)| (age, sm, line)),
        }
    }

    /// Runs `kernel` to completion (or `max_cycles`).
    ///
    /// # Errors
    ///
    /// * [`RunError::Timeout`] — the cycle budget ran out.
    /// * [`RunError::Hang`] — the forward-progress watchdog
    ///   ([`GpuConfig::watchdog_window`]) saw no progress for a full window;
    ///   the attached [`HangReport`] names every stalled warp and queue.
    /// * [`RunError::AuditFailed`] — a structural invariant audit
    ///   ([`GpuConfig::audit_interval`]) found violations.
    pub fn run(&mut self, kernel: &Kernel, max_cycles: u64) -> Result<RunStats, RunError> {
        let extra_regs = match &self.design {
            Design::Caba(c) => c.extra_regs_per_thread(),
            _ => 0,
        };
        let grid = kernel.dims().grid_dim;
        let mut next_cta: u32 = 0;
        let start = self.now;
        let mut last_sig = self.progress_signature();
        let mut last_progress = start;
        // The progress signature scans every SM and partition, so it is
        // sampled every `wd_stride` cycles instead of every cycle. Hang
        // detection latency grows by at most one stride; completing runs
        // are bit-identical (the watchdog never mutates machine state).
        let wd_window = self.cfg.watchdog_window;
        let wd_stride = (wd_window / 8).max(1);
        let tracing = self.tracer.is_some();

        loop {
            let now = self.now;
            if now - start >= max_cycles {
                self.catch_up_parts();
                return Err(RunError::Timeout {
                    cycles: max_cycles,
                    report: Box::new(self.hang_report(kernel, next_cta, grid)),
                });
            }

            // 1. CTA dispatch (round-robin over SMs).
            'dispatch: while next_cta < grid {
                let mut launched = false;
                for sm in &mut self.sms {
                    if next_cta >= grid {
                        break;
                    }
                    if sm.try_launch_block(next_cta, kernel, extra_regs) {
                        next_cta += 1;
                        launched = true;
                    }
                }
                if !launched {
                    break 'dispatch;
                }
            }

            // 2. SM cycles. The shared-state view is built once per cycle
            //    (not once per SM), and fully drained SMs take the cheap
            //    idle tick — see `Sm::idle_tick` for the bit-identity
            //    argument.
            {
                let mut shared = SharedState {
                    mem: &mut self.mem,
                    cmap: self.cmap.as_mut(),
                    line_store: &mut self.line_store,
                    design: &mut self.design,
                };
                for sm in &mut self.sms {
                    if sm.quiesced() {
                        sm.idle_tick();
                    } else {
                        sm.cycle(now, kernel, &mut shared);
                    }
                }
            }

            // 3. Drain SM requests into the forward crossbar (one per SM per
            //    cycle). Reads enter the request ledger here.
            for (i, sm) in self.sms.iter_mut().enumerate() {
                let Some(req) = sm.peek_request().copied() else {
                    continue;
                };
                let dst = ((req.addr / LINE_SIZE as u64) % self.cfg.num_channels as u64) as usize;
                if !self.xbar_fwd.can_accept(dst) {
                    continue;
                }
                if self.xbar_injector.drop_packet() {
                    self.flits_dropped += 1;
                    match self.xbar_injector.mode() {
                        FaultMode::Recover => {
                            // Link-level retransmission: the packet stays
                            // queued at the SM and re-enters arbitration.
                            self.flit_retransmissions += 1;
                        }
                        FaultMode::Silent => {
                            let req = sm.pop_request().expect("peeked");
                            if !req.is_write {
                                // The SM believes the read is in flight; the
                                // conservation audit must notice it is not.
                                self.ledger.insert(
                                    (i, req.addr),
                                    LedgerEntry {
                                        issued_at: now,
                                        stage: Stage::RequestXbar,
                                    },
                                );
                            }
                        }
                    }
                    continue;
                }
                let req = sm.pop_request().expect("peeked");
                if let Err(e) = self.xbar_fwd.try_push(
                    i,
                    dst,
                    PartReq {
                        sm: i,
                        addr: req.addr,
                        is_write: req.is_write,
                    },
                    req.flits,
                ) {
                    debug_assert!(e.is_back_pressure(), "unexpected push error: {e}");
                    sm.push_request_front(req);
                    continue;
                }
                if !req.is_write {
                    self.ledger.insert(
                        (i, req.addr),
                        LedgerEntry {
                            issued_at: now,
                            stage: Stage::RequestXbar,
                        },
                    );
                }
            }

            // 4. Crossbar → partitions. The output-port scan only runs when
            //    the crossbar actually holds delivered flits.
            self.xbar_fwd.cycle();
            if self.xbar_fwd.delivered_pending() > 0 {
                for (p, part) in self.parts.iter_mut().enumerate() {
                    if part.can_accept() {
                        if let Some(req) = self.xbar_fwd.pop(p) {
                            if !req.is_write {
                                if let Some(e) = self.ledger.get_mut(&(req.sm, req.addr)) {
                                    e.stage = Stage::Partition;
                                }
                            }
                            part.push(req);
                        }
                    }
                }
            }

            // 5. Partition cycles. The size oracle is built once per cycle,
            //    and quiesced partitions are skipped entirely — their DRAM
            //    clock is repaid in bulk by `Partition::catch_up`, which is
            //    timing-equivalent because FR-FCFS compares against the
            //    absolute `now`, not per-cycle deltas.
            {
                let mut oracle = SizeOracle {
                    mem: &self.mem,
                    cmap: self.cmap.as_mut(),
                    line_store: &self.line_store,
                    mem_compressed: self.design.mem_compressed(),
                    icnt_compressed: self.design.icnt_compressed(),
                };
                for part in self.parts.iter_mut() {
                    if part.quiesced() {
                        continue;
                    }
                    part.cycle(now, &mut oracle);
                }
            }

            // 6. Partition responses → response crossbar.
            for (p, part) in self.parts.iter_mut().enumerate() {
                let Some(resp) = part.pop_response() else {
                    continue;
                };
                if !self.xbar_rsp.can_accept(resp.sm) {
                    // Back-pressure: hold the response in the partition.
                    part.push_response_front(resp);
                    continue;
                }
                if self.xbar_injector.drop_packet() {
                    self.flits_dropped += 1;
                    match self.xbar_injector.mode() {
                        FaultMode::Recover => {
                            self.flit_retransmissions += 1;
                            part.push_response_front(resp);
                        }
                        FaultMode::Silent => {
                            // The response vanishes at the crossbar port.
                            if let Some(e) = self.ledger.get_mut(&(resp.sm, resp.addr)) {
                                e.stage = Stage::ResponseXbar;
                            }
                        }
                    }
                    continue;
                }
                if let Some(e) = self.ledger.get_mut(&(resp.sm, resp.addr)) {
                    e.stage = Stage::ResponseXbar;
                }
                let (src, dst, flits) = (p, resp.sm, resp.flits);
                if let Err(e) = self.xbar_rsp.try_push(src, dst, resp, flits) {
                    debug_assert!(e.is_back_pressure(), "unexpected push error: {e}");
                    part.push_response_front(e.payload);
                }
            }

            // 7. Response crossbar → SM fills. The per-SM drain (and the
            //    shared-state view it needs) only runs when the crossbar
            //    holds delivered flits.
            self.xbar_rsp.cycle();
            if self.xbar_rsp.delivered_pending() > 0 {
                let mut shared = SharedState {
                    mem: &mut self.mem,
                    cmap: self.cmap.as_mut(),
                    line_store: &mut self.line_store,
                    design: &mut self.design,
                };
                for (i, sm) in self.sms.iter_mut().enumerate() {
                    while let Some(resp) = self.xbar_rsp.pop(i) {
                        self.ledger.remove(&(i, resp.addr));
                        sm.handle_fill(now, resp.addr, &mut shared);
                    }
                }
            }

            self.now += 1;
            if tracing {
                self.trace_tick();
            }

            // Forward-progress watchdog (sampled every `wd_stride` cycles).
            if wd_window > 0 && (self.now - start).is_multiple_of(wd_stride) {
                let sig = self.progress_signature();
                if sig != last_sig {
                    last_sig = sig;
                    last_progress = self.now;
                } else if self.now - last_progress >= wd_window {
                    self.catch_up_parts();
                    return Err(RunError::Hang {
                        cycles: self.now - start,
                        window: wd_window,
                        report: Box::new(self.hang_report(kernel, next_cta, grid)),
                    });
                }
            }

            // Structural invariant audits.
            if self.cfg.audit_interval > 0
                && (self.now - start).is_multiple_of(self.cfg.audit_interval)
            {
                self.audits_run += 1;
                let violations = self.audit(self.now);
                if !violations.is_empty() {
                    return Err(RunError::AuditFailed {
                        cycle: self.now,
                        violations,
                    });
                }
            }

            // 8. Completion check. Cheapest gates first: the dispatch
            //    cursor, then the in-flight read ledger (empty is implied
            //    by a fully drained machine, so this gate never delays
            //    completion), then the O(1) idle/quiesced flags.
            if next_cta >= grid
                && self.ledger.is_empty()
                && self.xbar_fwd.idle()
                && self.xbar_rsp.idle()
                && self.sms.iter().all(|s| s.quiesced())
                && self.parts.iter().all(|p| p.quiesced())
            {
                break;
            }
        }

        self.catch_up_parts();
        Ok(self.collect_stats(self.now - start))
    }

    /// Diagnostic multi-line state dump.
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        let mut out = String::new();
        for sm in &self.sms {
            out.push_str(&sm.debug_state());
            out.push('\n');
        }
        for p in &self.parts {
            out.push_str(&format!("P{}: quiesced={}\n", p.id(), p.quiesced()));
        }
        out.push_str(&format!(
            "xbar_fwd idle={} xbar_rsp idle={}\n",
            self.xbar_fwd.idle(),
            self.xbar_rsp.idle()
        ));
        out
    }

    fn collect_stats(&self, cycles: u64) -> RunStats {
        let mut stats = RunStats {
            cycles,
            ..Default::default()
        };
        for sm in &self.sms {
            sm.export_stats(&mut stats);
        }
        for part in &self.parts {
            let d = part.dram_stats();
            stats.dram_busy_cycles += d.bus_busy_cycles;
            stats.dram_total_cycles += d.total_cycles;
            stats.dram_bursts += d.bursts;
            stats.dram_activates += d.row_misses;
            stats.l2_hits += part.l2_hits();
            stats.l2_misses += part.l2_misses();
            stats.md_lookups += part.md_lookups();
            stats.md_misses += part.md_misses();
            stats.dram_delay_faults += part.delay_faults();
        }
        stats.icnt_flits = self.xbar_fwd.total_flits() + self.xbar_rsp.total_flits();
        stats.audits_run = self.audits_run;
        stats.flits_dropped = self.flits_dropped;
        stats.flit_retransmissions = self.flit_retransmissions;
        stats
    }
}
