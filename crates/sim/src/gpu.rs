//! The whole-GPU model: SMs, two crossbars, memory partitions, and the CTA
//! dispatcher.

use crate::assist::LineStore;
use crate::config::{Design, GpuConfig};
use crate::mempart::{PartReq, PartResp, Partition, SizeOracle};
use crate::sm::{SharedState, Sm};
use crate::stats::RunStats;
use crate::trace::{ActivityTrace, Sample, Tracer};
use caba_isa::Kernel;
use caba_mem::{CompressionMap, Crossbar, FuncMem, LINE_SIZE};
use std::fmt;

/// Error returned by [`Gpu::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The kernel did not finish within the cycle budget.
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Timeout { cycles } => {
                write!(f, "kernel did not complete within {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// The simulated GPU.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    design: Design,
    mem: FuncMem,
    cmap: Option<CompressionMap>,
    line_store: LineStore,
    sms: Vec<Sm>,
    parts: Vec<Partition>,
    xbar_fwd: Crossbar<PartReq>,
    xbar_rsp: Crossbar<PartResp>,
    now: u64,
    tracer: Option<Tracer>,
}

impl Gpu {
    /// Builds a GPU for one design point.
    pub fn new(cfg: GpuConfig, design: Design) -> Self {
        let cmap = design
            .mem_compressed()
            .then(|| match &design {
                Design::Caba(c) => CompressionMap::new(c.selector()),
                d => CompressionMap::new(caba_mem::func::LineCompressor::Fixed(
                    d.algorithm().expect("compressed design has an algorithm"),
                )),
            });
        let with_md = design.mem_compressed();
        Gpu {
            cfg,
            mem: FuncMem::new(),
            cmap,
            line_store: LineStore::new(),
            sms: (0..cfg.num_sms).map(|i| Sm::new(i, cfg)).collect(),
            parts: (0..cfg.num_channels)
                .map(|i| Partition::new(i, cfg, with_md))
                .collect(),
            xbar_fwd: Crossbar::new(cfg.num_sms, cfg.num_channels, cfg.icnt_latency),
            xbar_rsp: Crossbar::new(cfg.num_channels, cfg.num_sms, cfg.icnt_latency),
            now: 0,
            tracer: None,
            design,
        }
    }

    /// Enables activity tracing: every `interval` cycles a [`Sample`] of
    /// per-SM issue counts and DRAM utilization is recorded. Retrieve the
    /// trace with [`Gpu::take_trace`] after `run`.
    pub fn enable_tracing(&mut self, interval: u64) {
        self.tracer = Some(Tracer::new(interval, self.cfg.num_sms));
    }

    /// Takes the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<ActivityTrace> {
        self.tracer.take().map(|t| t.trace)
    }

    fn trace_tick(&mut self) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        if self.now - tr.last_cycle < tr.interval {
            return;
        }
        let mut app = Vec::with_capacity(self.sms.len());
        let mut assist = Vec::with_capacity(self.sms.len());
        for (i, sm) in self.sms.iter().enumerate() {
            app.push(sm.app_instructions() - tr.last_app[i]);
            assist.push(sm.assist_instructions() - tr.last_assist[i]);
            tr.last_app[i] = sm.app_instructions();
            tr.last_assist[i] = sm.assist_instructions();
        }
        let (mut busy, mut total) = (0u64, 0u64);
        for p in &self.parts {
            let d = p.dram_stats();
            busy += d.bus_busy_cycles;
            total += d.total_cycles;
        }
        tr.trace.samples.push(Sample {
            cycle: self.now,
            app_issued: app,
            assist_issued: assist,
            dram_busy: busy - tr.last_dram_busy,
            dram_total: total - tr.last_dram_total,
        });
        tr.last_dram_busy = busy;
        tr.last_dram_total = total;
        tr.last_cycle = self.now;
    }

    /// The functional memory (read-only view).
    pub fn mem(&self) -> &FuncMem {
        &self.mem
    }

    /// The functional memory, mutable (for loading input images).
    pub fn mem_mut(&mut self) -> &mut FuncMem {
        &mut self.mem
    }

    /// Copies input data into device memory (the host→device transfer; with
    /// compressed designs the data is considered software-pre-compressed at
    /// this point, §4.3.1).
    pub fn load_image(&mut self, addr: u64, bytes: &[u8]) {
        self.mem.load_image(addr, bytes);
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The design point.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Runs `kernel` to completion (or `max_cycles`).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Timeout`] when the cycle budget is exhausted —
    /// usually a sign of a kernel that deadlocks on a barrier.
    pub fn run(&mut self, kernel: &Kernel, max_cycles: u64) -> Result<RunStats, RunError> {
        let extra_regs = match &self.design {
            Design::Caba(c) => c.extra_regs_per_thread(),
            _ => 0,
        };
        let grid = kernel.dims().grid_dim;
        let mut next_cta: u32 = 0;
        let start = self.now;

        loop {
            let now = self.now;
            if now - start >= max_cycles {
                return Err(RunError::Timeout { cycles: max_cycles });
            }

            // 1. CTA dispatch (round-robin over SMs).
            'dispatch: while next_cta < grid {
                let mut launched = false;
                for sm in &mut self.sms {
                    if next_cta >= grid {
                        break;
                    }
                    if sm.try_launch_block(next_cta, kernel, extra_regs) {
                        next_cta += 1;
                        launched = true;
                    }
                }
                if !launched {
                    break 'dispatch;
                }
            }

            // 2. SM cycles.
            for sm in &mut self.sms {
                let mut shared = SharedState {
                    mem: &mut self.mem,
                    cmap: self.cmap.as_mut(),
                    line_store: &mut self.line_store,
                    design: &mut self.design,
                };
                sm.cycle(now, kernel, &mut shared);
            }

            // 3. Drain SM requests into the forward crossbar (one per SM per
            //    cycle).
            for (i, sm) in self.sms.iter_mut().enumerate() {
                if let Some(req) = sm.peek_request().copied() {
                    let dst = ((req.addr / LINE_SIZE as u64)
                        % self.cfg.num_channels as u64) as usize;
                    if self.xbar_fwd.can_accept(dst) {
                        let req = sm.pop_request().expect("peeked");
                        self.xbar_fwd
                            .try_push(
                                i,
                                dst,
                                PartReq {
                                    sm: i,
                                    addr: req.addr,
                                    is_write: req.is_write,
                                },
                                req.flits,
                            )
                            .expect("checked can_accept");
                    }
                }
            }

            // 4. Crossbar → partitions.
            self.xbar_fwd.cycle();
            for (p, part) in self.parts.iter_mut().enumerate() {
                if part.can_accept() {
                    if let Some(req) = self.xbar_fwd.pop(p) {
                        part.push(req);
                    }
                }
            }

            // 5. Partition cycles.
            for part in self.parts.iter_mut() {
                let mut oracle = SizeOracle {
                    mem: &self.mem,
                    cmap: self.cmap.as_mut(),
                    line_store: &self.line_store,
                    mem_compressed: self.design.mem_compressed(),
                    icnt_compressed: self.design.icnt_compressed(),
                };
                part.cycle(now, &mut oracle);
            }

            // 6. Partition responses → response crossbar.
            for (p, part) in self.parts.iter_mut().enumerate() {
                if let Some(resp) = part.pop_response() {
                    if self.xbar_rsp.can_accept(resp.sm) {
                        self.xbar_rsp
                            .try_push(p, resp.sm, resp, resp.flits)
                            .expect("checked can_accept");
                    } else {
                        // Hold the response by re-queueing it in the
                        // partition (back-pressure).
                        part.push_response_front(resp);
                    }
                }
            }

            // 7. Response crossbar → SM fills.
            self.xbar_rsp.cycle();
            for (i, sm) in self.sms.iter_mut().enumerate() {
                while let Some(resp) = self.xbar_rsp.pop(i) {
                    let mut shared = SharedState {
                        mem: &mut self.mem,
                        cmap: self.cmap.as_mut(),
                        line_store: &mut self.line_store,
                        design: &mut self.design,
                    };
                    sm.handle_fill(now, resp.addr, &mut shared);
                }
            }

            self.now += 1;
            self.trace_tick();

            // 8. Completion check.
            if next_cta >= grid
                && self.sms.iter().all(|s| s.quiesced())
                && self.parts.iter().all(|p| p.quiesced())
                && self.xbar_fwd.idle()
                && self.xbar_rsp.idle()
            {
                break;
            }
        }

        Ok(self.collect_stats(self.now - start))
    }

    /// Diagnostic multi-line state dump.
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        let mut out = String::new();
        for sm in &self.sms {
            out.push_str(&sm.debug_state());
            out.push('\n');
        }
        for p in &self.parts {
            out.push_str(&format!("P{}: quiesced={}\n", p.id(), p.quiesced()));
        }
        out.push_str(&format!(
            "xbar_fwd idle={} xbar_rsp idle={}\n",
            self.xbar_fwd.idle(),
            self.xbar_rsp.idle()
        ));
        out
    }

    fn collect_stats(&self, cycles: u64) -> RunStats {
        let mut stats = RunStats {
            cycles,
            ..Default::default()
        };
        for sm in &self.sms {
            sm.export_stats(&mut stats);
        }
        for part in &self.parts {
            let d = part.dram_stats();
            stats.dram_busy_cycles += d.bus_busy_cycles;
            stats.dram_total_cycles += d.total_cycles;
            stats.dram_bursts += d.bursts;
            stats.dram_activates += d.row_misses;
            stats.l2_hits += part.l2_hits();
            stats.l2_misses += part.l2_misses();
            stats.md_lookups += part.md_lookups();
            stats.md_misses += part.md_misses();
        }
        stats.icnt_flits = self.xbar_fwd.total_flits() + self.xbar_rsp.total_flits();
        stats
    }
}
