//! Observability configuration: the tracing and metrics knobs carried on
//! [`GpuConfig`](crate::GpuConfig).
//!
//! Everything here is record-only: no setting in this module may change
//! scheduling, timing, or any other architectural state. The default
//! ([`ObservabilityConfig::default`]) is fully off — no tracer is
//! allocated, no metric shards exist, and the cycle loop pays nothing.
//!
//! ```
//! use caba_sim::{GpuConfig, MetricsLevel, TraceConfig};
//!
//! let cfg = GpuConfig::small()
//!     .with_trace(TraceConfig::full(64))
//!     .with_metrics(MetricsLevel::Counters);
//! assert_eq!(cfg.observability.trace.unwrap().interval, 64);
//! ```

use caba_stats::{CounterId, GaugeId, MetricRegistry, MetricsLevel};

/// Activity-trace configuration (periodic sampling plus optional instant
/// events), consumed by [`crate::Gpu`] at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sampling interval in cycles. Must be at least 1
    /// ([`GpuConfig::validate`](crate::GpuConfig::validate) rejects 0).
    pub interval: u64,
    /// Also record instant events: assist-warp spawn/retire, detected fill
    /// corruptions, crossbar packet drops, and DRAM delay faults.
    pub events: bool,
}

impl TraceConfig {
    /// Periodic sampling only (the pre-redesign `enable_tracing` behavior).
    pub fn sampled(interval: u64) -> Self {
        TraceConfig {
            interval,
            events: false,
        }
    }

    /// Periodic sampling plus instant events.
    pub fn full(interval: u64) -> Self {
        TraceConfig {
            interval,
            events: true,
        }
    }
}

/// Observability switches carried on [`GpuConfig`](crate::GpuConfig).
///
/// `Copy + PartialEq` like the rest of the configuration, so design sweeps
/// can compare and clone configurations freely.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ObservabilityConfig {
    /// Activity tracing (`None` = no tracer allocated).
    pub trace: Option<TraceConfig>,
    /// Metric registry level (default [`MetricsLevel::Off`]).
    pub metrics: MetricsLevel,
}

/// Typed handles into the simulator's metric schema (see
/// [`sim_metrics_schema`]). One copy lives in every SM recording into its
/// own shard, so ids must stay `Copy`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SimMetricIds {
    /// Assist warps deployed into an AWC slot.
    pub assist_spawned: CounterId,
    /// Assist warps that ran to completion and were reclaimed.
    pub assist_retired: CounterId,
    /// High-water mark of concurrently active assist warps on one SM.
    pub peak_active_assists: GaugeId,
    /// High-water mark of the LSU line-operation queue on one SM.
    pub peak_lsu_pending: GaugeId,
}

/// The simulator's per-SM metric schema, registered once so every SM's
/// [`caba_stats::MetricShard`] has the identical dense layout and shards
/// merge in index order without name lookups.
pub(crate) fn sim_metrics_schema() -> (MetricRegistry, SimMetricIds) {
    let mut reg = MetricRegistry::new();
    let ids = SimMetricIds {
        assist_spawned: reg.counter("sm.assist.spawned"),
        assist_retired: reg.counter("sm.assist.retired"),
        peak_active_assists: reg.gauge("sm.assist.peak_active"),
        peak_lsu_pending: reg.gauge("sm.lsu.peak_pending"),
    };
    (reg, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_off() {
        let o = ObservabilityConfig::default();
        assert!(o.trace.is_none());
        assert!(!o.metrics.enabled());
    }

    #[test]
    fn trace_constructors() {
        assert_eq!(
            TraceConfig::sampled(32),
            TraceConfig {
                interval: 32,
                events: false
            }
        );
        assert!(TraceConfig::full(32).events);
    }

    #[test]
    fn schema_is_stable() {
        let (reg, ids) = sim_metrics_schema();
        assert_eq!(reg.len(), 4);
        let mut shard = reg.shard();
        shard.inc(ids.assist_spawned);
        shard.inc(ids.assist_retired);
        shard.set_max(ids.peak_active_assists, 3);
        shard.set_max(ids.peak_lsu_pending, 9);
        let snap = reg.snapshot(&shard);
        assert_eq!(snap.get("sm.assist.spawned"), Some(1));
        assert_eq!(snap.get("sm.lsu.peak_pending"), Some(9));
    }
}
