//! The streaming multiprocessor model: warp slots, two GTO schedulers,
//! SP/SFU/LSU pipelines, L1 + MSHRs, the store buffer, and the assist-warp
//! runtime (the AWC/AWT/AWB mechanics of §3.3–3.4).

use crate::assist::{
    AssistLaunch, AssistOutcome, AssistPriority, FillAction, FillInfo, SharedLineStore, SmServices,
    StoreAction, StoreInfo,
};
use crate::config::{Design, GpuConfig, SchedulerPolicy};
use crate::exec::{execute, ThreadCtx};
use crate::fault::{stream, FaultInjector, FaultMode};
use crate::integrity::{Component, SmSnapshot, Violation, WarpSnapshot, WarpState};
use crate::lsu::{LineOp, LineOpKind, Lsu, WarpRef};
use crate::observe::{sim_metrics_schema, SimMetricIds};
use crate::trace::{TraceEvent, TraceEventKind};
use crate::warp::Warp;
use caba_isa::{FuClass, Instr, Kernel, Op, Program, Reg, Space, WARP_SIZE};
use caba_mem::{AccessOutcome, Cache, Mshr, SharedCmap, SharedMem, LINE_SIZE};
use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
use caba_stats::{FxHashMap, IssueBreakdown, MetricShard, StallKind};
use std::collections::VecDeque;

use std::sync::Arc;

/// Base of the shared-memory (scratchpad) address window in the unified
/// functional address space.
pub const SHARED_WINDOW_BASE: u64 = 0x4000_0000_0000;
/// Bytes reserved per block's shared window.
pub const SHARED_WINDOW_SIZE: u64 = 0x1_0000;
/// Base of the per-SM assist-warp staging regions.
pub const STAGING_BASE: u64 = 0x5000_0000_0000;
/// Bytes of staging per SM.
pub const STAGING_SIZE: u64 = 0x10_0000;

/// Shared mutable state the SM needs from the GPU each cycle, behind
/// phase-aware views: direct in serial phases, overlay (snapshot + own
/// writes) during the parallel SM phase. SM code is identical either way.
pub struct SharedState<'a> {
    /// Functional memory.
    pub mem: SharedMem<'a>,
    /// Reference compression map (compressed designs only).
    pub cmap: Option<SharedCmap<'a>>,
    /// Per-line stored forms.
    pub line_store: SharedLineStore<'a>,
    /// The evaluated design point (owns the CABA controller, if any).
    pub design: &'a mut Design,
}

/// An outbound memory request (SM → partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutReq {
    /// Line base address.
    pub addr: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Interconnect flits this request occupies.
    pub flits: u32,
}

#[derive(Debug)]
struct Block {
    ctaid: u32,
    warp_slots: Vec<usize>,
    warps_done: usize,
    arrived: usize,
    regs: u32,
    shared: u32,
}

#[derive(Debug)]
struct SmWarp {
    warp: Warp,
    block_slot: usize,
    ctaid: u32,
    warp_in_block: u32,
    age: u64,
    /// Counted toward its block's completion (resources are freed at block
    /// granularity, so the slot stays occupied until the whole CTA retires).
    retired: bool,
}

#[derive(Debug)]
struct AssistRt {
    warp: Warp,
    program: Arc<Program>,
    priority: AssistPriority,
    tag: u64,
    age: u64,
    parent: usize,
}

#[derive(Debug, Clone, Copy)]
struct Ticket {
    warp: WarpRef,
    dst: Option<Reg>,
    remaining: u32,
}

#[derive(Debug, Clone, Copy)]
struct Writeback {
    at: u64,
    warp: WarpRef,
    reg: Option<Reg>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueBlock {
    Hazard,
    MemStructural,
    ComputeStructural,
}

/// Why one blocked candidate could not issue this cycle, at full
/// resolution (hazards subdivided by what the missing operand is waiting
/// on). Folded across a scheduler's candidates by [`fold_verdict`] into the
/// slot's single Fig. 1 attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StallVerdict {
    /// The candidate is parked at a block-wide barrier.
    Barrier,
    /// Scoreboard hazard on a register with an outstanding load (waiting
    /// for memory data).
    HazardMem,
    /// Scoreboard hazard on an operand of a control-steering instruction
    /// (branch/predicate/vote — reconvergence-determining work).
    HazardCtrl,
    /// Any other scoreboard hazard (in-pipeline producer not written back).
    HazardSb,
    /// The LSU issue slot or line-op queue is full.
    MemStructural,
    /// The SFU is not ready (initiation interval).
    ComputeStructural,
}

impl StallVerdict {
    /// Evidence strength: structural back-pressure (2) beats a scoreboard
    /// hazard (1) beats barrier parking (0).
    fn tier(self) -> u8 {
        match self {
            StallVerdict::Barrier => 0,
            StallVerdict::HazardMem | StallVerdict::HazardCtrl | StallVerdict::HazardSb => 1,
            StallVerdict::MemStructural | StallVerdict::ComputeStructural => 2,
        }
    }

    /// The Fig. 1 taxonomy bucket this verdict lands in.
    pub(crate) fn bucket(self) -> StallKind {
        match self {
            StallVerdict::Barrier => StallKind::Synchronization,
            StallVerdict::HazardMem | StallVerdict::MemStructural => StallKind::MemoryData,
            StallVerdict::HazardSb | StallVerdict::ComputeStructural => {
                StallKind::ScoreboardPipeline
            }
            StallVerdict::HazardCtrl => StallKind::ControlReconvergence,
        }
    }
}

/// Folds one blocked candidate's verdict into the scheduler slot's verdict.
///
/// The tiebreak rule, which Fig. 1 attribution depends on: **the first
/// blocked candidate in scheduler priority order wins within a tier**
/// (high-priority assists, then the greedy warp, then parents oldest-first,
/// then low-priority assists — the exact order [`Sm::schedule`] offers
/// candidates), and a later candidate only replaces the verdict when its
/// evidence tier is strictly higher (structural > hazard > barrier). This
/// generalizes the original rule — "first blocked candidate wins, with
/// structural evidence preferred over data-dependence" — so e.g. a slot
/// whose oldest blocked warp waits on a load is charged to memory even if a
/// younger candidate is SFU-blocked, but a slot where every runnable warp
/// is barrier-parked and one is pipe-blocked is charged to the pipeline.
pub(crate) fn fold_verdict(cur: Option<StallVerdict>, new: StallVerdict) -> Option<StallVerdict> {
    match cur {
        None => Some(new),
        Some(c) if new.tier() > c.tier() => Some(new),
        Some(c) => Some(c),
    }
}

/// Per-candidate consideration memo: what the last full evaluation of this
/// warp/assist slot proved, valid until an invalidation point. Scheduling
/// scans in a stalled machine re-visit every candidate every cycle; the
/// memo collapses each revisit to a tag check instead of an instruction
/// fetch plus scoreboard scan.
///
/// Soundness rests on two facts. First, a non-issuing warp's pending
/// register set only *shrinks* (writebacks clear bits; only the warp's own
/// issue sets them), so "hazard-free with this head instruction" stays
/// true until the warp issues — the blocked-class tags survive writebacks.
/// Second, every tag's residual per-cycle condition (`MemBlocked`: the LSU
/// issue path, `SfuBlocked`: the SFU initiation interval) is re-evaluated
/// against live state on each visit, so a tag check resolves exactly as
/// the full evaluation would.
///
/// Invalidation points: the slot's own issue, a writeback clearing one of
/// its registers (hazard tags only), barrier release (barrier tags only),
/// and any candidate-list rebuild (all tags).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotMemo {
    /// No valid memo: run the full fetch + check.
    Unknown,
    /// Scoreboard-blocked with this classified verdict. Pinned until a
    /// writeback clears one of the warp's registers, exactly like the
    /// recomputed `IssueBlock::Hazard` path.
    Hazard(StallVerdict),
    /// Hazard-free with a memory-class head instruction: issues the cycle
    /// the LSU issue path opens (`shared` accesses need only the issue
    /// slot, global ones also line-op queue space).
    MemBlocked {
        /// Head instruction targets the shared-memory pipe.
        shared: bool,
    },
    /// Hazard-free with an SFU head instruction: issues once the SFU
    /// initiation interval elapses.
    SfuBlocked,
    /// All lanes exited; contributes nothing until the block retires and
    /// the candidate list is rebuilt.
    Done,
    /// Parked at a block-wide barrier: contributes the `Barrier` verdict
    /// until the barrier releases.
    Barrier,
}

/// Per-candidate-list bitmasks over list *positions*, one bit set in at
/// most one mask per candidate, mirroring that candidate's [`SlotMemo`].
/// They let the scheduler scan skip whole blocked classes in O(1): every
/// `MemBlocked` candidate in a list shares one openness condition (the
/// LSU issue path), every `SfuBlocked` one shares the SFU interval, and
/// hazard/done/barrier parking is position-stable — so a fully-stalled
/// scan reduces to a handful of mask operations plus one representative
/// verdict per class (the first position in scan order, which is the only
/// member of a same-tier class that [`fold_verdict`] can ever keep).
#[derive(Clone, Copy, Default)]
struct ClassMasks {
    hazard: u64,
    barrier: u64,
    done: u64,
    /// `MemBlocked { shared: false }`: needs the issue slot *and* line-op
    /// queue space.
    mem_g: u64,
    /// `MemBlocked { shared: true }`: needs only the issue slot.
    mem_s: u64,
    sfu: u64,
}

impl ClassMasks {
    /// Moves `pos` into the mask matching `memo` (clearing it everywhere
    /// else). `Unknown` clears it from all masks.
    fn assign(&mut self, pos: u8, memo: SlotMemo) {
        let bit = 1u64 << pos;
        self.hazard &= !bit;
        self.barrier &= !bit;
        self.done &= !bit;
        self.mem_g &= !bit;
        self.mem_s &= !bit;
        self.sfu &= !bit;
        match memo {
            SlotMemo::Unknown => {}
            SlotMemo::Hazard(_) => self.hazard |= bit,
            SlotMemo::MemBlocked { shared: false } => self.mem_g |= bit,
            SlotMemo::MemBlocked { shared: true } => self.mem_s |= bit,
            SlotMemo::SfuBlocked => self.sfu |= bit,
            SlotMemo::Done => self.done |= bit,
            SlotMemo::Barrier => self.barrier |= bit,
        }
    }
}

/// Which candidate list a masked scan walks.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ListKind {
    HiAssist,
    Parents,
    LowAssist,
}

/// Sentinel for "slot not in any candidate list" in the position maps.
const NO_POS: u8 = u8::MAX;

/// One streaming multiprocessor.
pub struct Sm {
    id: usize,
    cfg: GpuConfig,
    blocks: Vec<Option<Block>>,
    warps: Vec<Option<SmWarp>>,
    assists: Vec<Option<AssistRt>>,
    assist_pending: VecDeque<AssistLaunch>,
    writebacks: Vec<Writeback>,
    tickets: Vec<Option<Ticket>>,
    free_tickets: Vec<usize>,
    lsu: Lsu,
    l1: Cache,
    mshr: Mshr<usize>,
    pending_decomp: FxHashMap<u64, Vec<usize>>,
    store_buffer: VecDeque<u64>,
    out_reqs: VecDeque<OutReq>,
    sfu_ready_at: u64,
    greedy: Vec<Option<WarpRef>>,
    rr_cursor: Vec<u64>,
    used_regs: u32,
    used_shared: u32,
    age_seq: u64,
    /// `Some` entries in `blocks`, maintained at launch/retire so
    /// [`Sm::quiesced`] needs no scan.
    resident_block_count: usize,
    /// `Some` entries in `assists`, maintained at deploy/finish.
    active_assist_count: usize,
    /// Low-priority entries in `assists`, maintained at deploy/finish so
    /// the AWB partition check in [`Sm::deploy_assist`] needs no scan.
    low_assist_count: usize,
    /// Conservative "some assist may be retirable" flag: set whenever an
    /// assist warp's `done` flips or a writeback lands on a done assist,
    /// cleared after a [`Sm::finish_assists`] sweep finds the slots quiet.
    /// Spurious `true` only costs a scan, so restore resets it to `true`.
    assist_done_hint: bool,
    /// High-priority entries in `assist_pending`, maintained at queue and
    /// deploy, so a queue full of gated low-priority launches costs O(1)
    /// per cycle instead of a scan.
    high_pending_count: usize,
    /// Monotonic count of blocks this SM has retired — the change signal
    /// behind the engine's CTA-dispatch gate. Launch capacity (block slot,
    /// warp slots, registers, shared memory) frees only at block
    /// retirement, so a blocked dispatch cannot unblock until this moves.
    /// Not serialized: restore conservatively reopens the gate.
    blocks_retired_total: u64,
    /// Per-scheduler candidate slots in issue-priority order, rebuilt only
    /// when warp/assist residency changes (`cand_dirty`): high-priority
    /// assists, occupied app-warp slots by age, low-priority assists.
    /// Done/at-barrier warps stay listed — `fetch_for` skips them exactly
    /// as the per-cycle rebuild used to, so cached scheduling is
    /// bit-identical.
    cand_his: Vec<Vec<usize>>,
    cand_parents: Vec<Vec<usize>>,
    cand_lows: Vec<Vec<usize>>,
    cand_dirty: bool,
    /// Per-scheduler [`ClassMasks`] for each candidate list, kept in
    /// lockstep with the memos by [`Sm::set_memo`]; rebuilt with the lists
    /// and after snapshot restore. Only consulted when `masks_ok`.
    parent_masks: Vec<ClassMasks>,
    hi_masks: Vec<ClassMasks>,
    low_masks: Vec<ClassMasks>,
    /// App warp slot -> position in its scheduler's parent list
    /// ([`NO_POS`] when unlisted).
    slot_pos: Vec<u8>,
    /// Assist slot -> position in its hi/low list ([`NO_POS`] when
    /// unlisted); which list is derived from the assist's priority.
    assist_pos: Vec<u8>,
    /// All candidate lists fit in 64-bit masks; oversized configurations
    /// fall back to the plain per-candidate scan.
    masks_ok: bool,
    /// Per-slot consideration memos (see [`SlotMemo`]): what the last full
    /// evaluation proved about each candidate, so stalled-machine scans
    /// cost a tag check per candidate instead of a fetch + scoreboard
    /// scan. Cleared wholesale on any residency change
    /// (`rebuild_candidates`).
    memo_app: Vec<SlotMemo>,
    memo_assist: Vec<SlotMemo>,
    /// App warps that have fully exited but not yet been reaped; gates the
    /// per-cycle `reap_warps` slot scan.
    done_unreaped: u32,
    /// Next-event dormancy cache, recomputed at the end of every executed
    /// cycle: true when that cycle proved the SM frozen (nothing issued,
    /// drained, deployed, or retired), so every following cycle until
    /// `dorm_horizon` — or an external fill/launch/request push, which
    /// clears the flag — is bit-identical and the global clock may skip
    /// them. Never serialized: restore clears it and the next real cycle
    /// (identical to a skipped one by this very invariant) recomputes it.
    dormant: bool,
    /// Earliest cycle a frozen SM acts on its own: the next writeback
    /// maturity or SFU readiness. `None` = only external input wakes it.
    dorm_horizon: Option<u64>,
    /// The Fig. 1 bucket each scheduler slot resolved to in the last
    /// executed cycle; while frozen every subsequent cycle resolves the
    /// same way, so `skip_ahead` bulk-credits these.
    last_slots: Vec<StallKind>,
    /// Reusable sort scratch for `rebuild_candidates` (age, slot) pairs —
    /// avoids a heap allocation on every residency change.
    cand_scratch: Vec<(u64, usize)>,
    injector: FaultInjector,
    /// Instant-event buffer, drained by the GPU tracer in SM index order.
    /// Empty unless `events_on` (set from `TraceConfig::events`).
    events: Vec<TraceEvent>,
    events_on: bool,
    /// Per-SM metric shard (`MetricsLevel::Full` only): typed ids plus
    /// dense storage, merged in SM index order at export.
    metrics: Option<(SimMetricIds, MetricShard)>,
    // statistics
    breakdown: IssueBreakdown,
    app_instructions: u64,
    assist_instructions: u64,
    shared_accesses: u64,
    threads_retired: u64,
    assist_launches: u64,
    store_buffer_overflows: u64,
    lines_compressed: u64,
    lines_decompressed: u64,
    lines_corrupted: u64,
    corruptions_detected: u64,
    corruption_refetches: u64,
    /// Issue slots taken by high-priority assist warps ahead of parent
    /// warps (the Fig. 13/14 "stolen slot" overhead).
    assist_slots_stolen: u64,
    /// Otherwise-idle issue slots reclaimed by low-priority assist warps
    /// (§3.2.3).
    assist_slots_reclaimed: u64,
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm")
            .field("id", &self.id)
            .field("resident_warps", &self.resident_warps())
            .field("app_instructions", &self.app_instructions)
            .finish()
    }
}

impl Sm {
    /// Creates an idle SM.
    pub fn new(id: usize, cfg: GpuConfig) -> Self {
        Sm {
            id,
            cfg,
            blocks: (0..cfg.max_blocks_per_sm).map(|_| None).collect(),
            warps: (0..cfg.warps_per_sm).map(|_| None).collect(),
            assists: (0..cfg.max_assist_warps).map(|_| None).collect(),
            assist_pending: VecDeque::new(),
            writebacks: Vec::new(),
            tickets: Vec::new(),
            free_tickets: Vec::new(),
            lsu: Lsu::new(cfg.lsu_queue),
            l1: Cache::new(cfg.l1),
            mshr: Mshr::new(cfg.mshrs),
            pending_decomp: FxHashMap::default(),
            store_buffer: VecDeque::new(),
            out_reqs: VecDeque::new(),
            sfu_ready_at: 0,
            greedy: vec![None; cfg.schedulers_per_sm],
            rr_cursor: vec![0; cfg.schedulers_per_sm],
            used_regs: 0,
            used_shared: 0,
            age_seq: 0,
            resident_block_count: 0,
            active_assist_count: 0,
            low_assist_count: 0,
            assist_done_hint: false,
            high_pending_count: 0,
            blocks_retired_total: 0,
            cand_his: vec![Vec::new(); cfg.schedulers_per_sm],
            cand_parents: vec![Vec::new(); cfg.schedulers_per_sm],
            cand_lows: vec![Vec::new(); cfg.schedulers_per_sm],
            parent_masks: vec![ClassMasks::default(); cfg.schedulers_per_sm],
            hi_masks: vec![ClassMasks::default(); cfg.schedulers_per_sm],
            low_masks: vec![ClassMasks::default(); cfg.schedulers_per_sm],
            slot_pos: vec![NO_POS; cfg.warps_per_sm],
            assist_pos: vec![NO_POS; cfg.max_assist_warps],
            masks_ok: true,
            cand_dirty: true,
            memo_app: vec![SlotMemo::Unknown; cfg.warps_per_sm],
            memo_assist: vec![SlotMemo::Unknown; cfg.max_assist_warps],
            done_unreaped: 0,
            dormant: false,
            dorm_horizon: None,
            last_slots: vec![StallKind::Idle; cfg.schedulers_per_sm],
            cand_scratch: Vec::new(),
            injector: FaultInjector::for_stream(cfg.fault, stream::SM_BASE + id as u64),
            events: Vec::new(),
            events_on: cfg.observability.trace.is_some_and(|t| t.events),
            metrics: cfg.observability.metrics.per_event().then(|| {
                let (reg, ids) = sim_metrics_schema();
                (ids, reg.shard())
            }),
            breakdown: IssueBreakdown::new(),
            app_instructions: 0,
            assist_instructions: 0,
            shared_accesses: 0,
            threads_retired: 0,
            assist_launches: 0,
            store_buffer_overflows: 0,
            lines_compressed: 0,
            lines_decompressed: 0,
            lines_corrupted: 0,
            corruptions_detected: 0,
            corruption_refetches: 0,
            assist_slots_stolen: 0,
            assist_slots_reclaimed: 0,
        }
    }

    /// This SM's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Base address of this SM's staging region.
    pub fn staging_base(&self) -> u64 {
        STAGING_BASE + self.id as u64 * STAGING_SIZE
    }

    /// Resident warps.
    pub fn resident_warps(&self) -> usize {
        self.warps.iter().filter(|w| w.is_some()).count()
    }

    /// Resident blocks.
    pub fn resident_blocks(&self) -> usize {
        debug_assert_eq!(
            self.resident_block_count,
            self.blocks.iter().filter(|b| b.is_some()).count()
        );
        self.resident_block_count
    }

    /// Tries to make block `ctaid` resident; true on success.
    pub fn try_launch_block(&mut self, ctaid: u32, kernel: &Kernel, extra_regs: u32) -> bool {
        let dims = kernel.dims();
        let warps_needed = dims.warps_per_block() as usize;
        let regs_needed = (kernel.regs_per_thread() + extra_regs) * dims.block_dim;
        let shared_needed = kernel.shared_bytes_per_block();

        let block_slot = match self.blocks.iter().position(|b| b.is_none()) {
            Some(s) => s,
            None => return false,
        };
        // All rejection checks run before any allocation or mutation: a
        // blocked dispatch retried every cycle stays heap-quiet, and the
        // next-event clock can rely on failed launches being pure.
        if self.warps.iter().filter(|w| w.is_none()).count() < warps_needed {
            return false;
        }
        if self.used_regs + regs_needed > self.cfg.regfile_per_sm {
            return false;
        }
        if self.used_shared + shared_needed > self.cfg.shared_per_sm {
            return false;
        }
        let free_warps: Vec<usize> = self
            .warps
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_none())
            .map(|(i, _)| i)
            .take(warps_needed)
            .collect();

        let threads = dims.block_dim;
        for (wib, &slot) in free_warps.iter().enumerate() {
            // Last warp of an odd-sized block has a partial mask.
            let lane_lo = (wib as u32) * WARP_SIZE as u32;
            let lanes = threads.saturating_sub(lane_lo).min(WARP_SIZE as u32);
            let mask = if lanes >= 32 {
                u32::MAX
            } else {
                (1u32 << lanes) - 1
            };
            self.age_seq += 1;
            self.warps[slot] = Some(SmWarp {
                warp: Warp::new(kernel.regs_per_thread().max(1) as usize, mask),
                block_slot,
                ctaid,
                warp_in_block: wib as u32,
                age: self.age_seq,
                retired: false,
            });
        }
        self.blocks[block_slot] = Some(Block {
            ctaid,
            warp_slots: free_warps,
            warps_done: 0,
            arrived: 0,
            regs: regs_needed,
            shared: shared_needed,
        });
        self.used_regs += regs_needed;
        self.used_shared += shared_needed;
        self.resident_block_count += 1;
        self.cand_dirty = true;
        self.dormant = false;
        true
    }

    /// True when nothing is executing or outstanding in this SM. All
    /// constituent checks are O(1) (maintained counters and queue lengths),
    /// so the GPU can consult this every cycle for its active-set and
    /// completion check without scanning warp or assist slots.
    pub fn quiesced(&self) -> bool {
        self.resident_block_count == 0
            && self.active_assist_count == 0
            && self.assist_pending.is_empty()
            && self.writebacks.is_empty()
            && self.lsu.pending() == 0
            && self.mshr.outstanding() == 0
            && self.pending_decomp.is_empty()
            && self.store_buffer.is_empty()
            && self.out_reqs.is_empty()
    }

    /// Pops an outbound memory request (GPU drains into the crossbar).
    pub fn pop_request(&mut self) -> Option<OutReq> {
        let r = self.out_reqs.pop_front();
        if r.is_some() {
            // Draining a request can unblock a full-queue LSU stall.
            self.dormant = false;
        }
        r
    }

    /// Peeks the next outbound request.
    pub fn peek_request(&self) -> Option<&OutReq> {
        self.out_reqs.front()
    }

    /// Requeues a request that could not enter the interconnect.
    pub fn push_request_front(&mut self, req: OutReq) {
        self.dormant = false;
        self.out_reqs.push_front(req);
    }

    fn shared_base_for(&self, block_slot: usize) -> u64 {
        SHARED_WINDOW_BASE
            + ((self.id * self.cfg.max_blocks_per_sm + block_slot) as u64) * SHARED_WINDOW_SIZE
    }

    fn alloc_ticket(&mut self, t: Ticket) -> usize {
        if let Some(i) = self.free_tickets.pop() {
            self.tickets[i] = Some(t);
            i
        } else {
            self.tickets.push(Some(t));
            self.tickets.len() - 1
        }
    }

    fn resolve_ticket(&mut self, idx: usize, at: u64) {
        let done = {
            let t = self.tickets[idx].as_mut().expect("live ticket");
            t.remaining -= 1;
            t.remaining == 0
        };
        if done {
            let t = self.tickets[idx].take().expect("live ticket");
            self.free_tickets.push(idx);
            self.writebacks.push(Writeback {
                at,
                warp: t.warp,
                reg: t.dst,
            });
            if let WarpRef::App(slot) = t.warp {
                if let Some(w) = self.warps[slot].as_mut() {
                    w.warp.outstanding_loads = w.warp.outstanding_loads.saturating_sub(1);
                }
            }
        }
    }

    fn process_writebacks(&mut self, now: u64) {
        let mut i = 0;
        while i < self.writebacks.len() {
            if self.writebacks[i].at <= now {
                let wb = self.writebacks.swap_remove(i);
                match wb.warp {
                    WarpRef::App(slot) => {
                        if let (Some(w), Some(r)) = (self.warps[slot].as_mut(), wb.reg) {
                            w.warp.clear_pending(r);
                            // Only hazard tags depend on pending bits; the
                            // blocked-class tags stay hazard-free when bits
                            // clear and remain valid.
                            if matches!(self.memo_app[slot], SlotMemo::Hazard(_)) {
                                self.set_memo(WarpRef::App(slot), SlotMemo::Unknown);
                            }
                        }
                    }
                    WarpRef::Assist(slot) => {
                        if let (Some(a), Some(r)) = (self.assists[slot].as_mut(), wb.reg) {
                            a.warp.clear_pending(r);
                            if a.warp.done {
                                self.assist_done_hint = true;
                            }
                            if matches!(self.memo_assist[slot], SlotMemo::Hazard(_)) {
                                self.set_memo(WarpRef::Assist(slot), SlotMemo::Unknown);
                            }
                        }
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    // ----- assist warp runtime (AWC/AWT/AWB) -------------------------------

    /// Queues an assist-warp launch (AWT insertion, §3.4 Trigger).
    fn queue_assist(&mut self, launch: AssistLaunch) {
        if launch.priority == AssistPriority::High {
            self.high_pending_count += 1;
        }
        self.assist_pending.push_back(launch);
    }

    /// Deploys at most one pending assist warp per cycle (the AWC's
    /// round-robin deployment, §3.4).
    fn deploy_assist(&mut self, now: u64) {
        if self.assist_pending.is_empty() {
            return;
        }
        if self.active_assist_count == self.assists.len() {
            return;
        }
        // Low-priority assist warps are staged through the dedicated IB
        // partition, which has only `awb_low_priority_entries` slots (§3.3);
        // a gated low-priority launch must not block a high-priority one
        // behind it in the AWT.
        let low_ok = self.low_assist_count < self.cfg.awb_low_priority_entries;
        if !low_ok && self.high_pending_count == 0 {
            return;
        }
        let slot = self
            .assists
            .iter()
            .position(|a| a.is_none())
            .expect("free slot exists: active count below capacity");
        let pos = self
            .assist_pending
            .iter()
            .position(|l| l.priority == AssistPriority::High || low_ok)
            .expect("deployable launch exists: high pending or low gate open");
        let launch = self.assist_pending.remove(pos).expect("position valid");
        if launch.priority == AssistPriority::High {
            self.high_pending_count -= 1;
        }
        let nregs = launch.program.max_reg().max(1) as usize;
        let mut warp = Warp::new(nregs, launch.active_mask);
        for &(reg, val) in &launch.live_in {
            for lane in 0..WARP_SIZE {
                warp.set_reg(reg, lane, val);
            }
        }
        self.age_seq += 1;
        let high_priority = launch.priority == AssistPriority::High;
        self.assists[slot] = Some(AssistRt {
            warp,
            program: launch.program,
            priority: launch.priority,
            tag: launch.tag,
            age: self.age_seq,
            parent: launch.parent_warp,
        });
        self.active_assist_count += 1;
        if launch.priority == AssistPriority::Low {
            self.low_assist_count += 1;
        }
        self.assist_launches += 1;
        self.cand_dirty = true;
        if self.events_on {
            self.events.push(TraceEvent {
                cycle: now,
                kind: TraceEventKind::AssistSpawn {
                    sm: self.id,
                    high_priority,
                },
            });
        }
        if let Some((ids, shard)) = &mut self.metrics {
            shard.inc(ids.assist_spawned);
            shard.set_max(ids.peak_active_assists, self.active_assist_count as u64);
        }
    }

    fn finish_assists(&mut self, now: u64, shared: &mut SharedState<'_>) {
        if self.active_assist_count == 0 || !self.assist_done_hint {
            return;
        }
        // Any slot that is done with pending writebacks will re-raise the
        // hint when the writeback lands, so one quiet sweep clears it.
        self.assist_done_hint = false;
        for slot in 0..self.assists.len() {
            let ready = matches!(
                &self.assists[slot],
                Some(a) if a.warp.done && !a.warp.any_pending()
            );
            if !ready {
                continue;
            }
            let a = self.assists[slot].take().expect("checked above");
            self.active_assist_count -= 1;
            if a.priority == AssistPriority::Low {
                self.low_assist_count -= 1;
            }
            self.cand_dirty = true;
            if self.events_on {
                self.events.push(TraceEvent {
                    cycle: now,
                    kind: TraceEventKind::AssistRetire { sm: self.id },
                });
            }
            if let Some((ids, shard)) = &mut self.metrics {
                shard.inc(ids.assist_retired);
            }
            let outcome = match shared.design {
                Design::Caba(ctrl) => {
                    let mut svc = SmServices {
                        mem: &mut shared.mem,
                        cmap: shared.cmap.as_mut(),
                        line_store: &mut shared.line_store,
                        staging_base: STAGING_BASE + self.id as u64 * STAGING_SIZE,
                        sm_id: self.id,
                    };
                    ctrl.on_assist_complete(a.tag, &mut svc)
                }
                _ => AssistOutcome::Nothing,
            };
            match outcome {
                AssistOutcome::FillComplete { addr } => {
                    self.lines_decompressed += 1;
                    self.complete_fill_waiters(now, addr, 1);
                }
                AssistOutcome::StoreRelease { addr } => {
                    self.lines_compressed += 1;
                    if let Some(pos) = self.store_buffer.iter().position(|&x| x == addr) {
                        self.store_buffer.remove(pos);
                    }
                    let size =
                        shared
                            .line_store
                            .stored_size(&shared.mem, shared.cmap.as_mut(), addr);
                    self.emit_write(addr, size);
                }
                AssistOutcome::Nothing => {}
            }
        }
    }

    fn emit_write(&mut self, addr: u64, size_bytes: usize) {
        let flits = size_bytes.div_ceil(caba_mem::icnt::FLIT_BYTES).max(1) as u32;
        self.out_reqs.push_back(OutReq {
            addr,
            is_write: true,
            flits,
        });
    }

    // ----- fills -----------------------------------------------------------

    /// Handles a read response arriving from the interconnect.
    pub fn handle_fill(&mut self, now: u64, addr: u64, shared: &mut SharedState<'_>) {
        // External input: whatever the last cycle proved about this SM
        // being frozen no longer holds.
        self.dormant = false;
        // Fault injection: a compressed line arriving at the SM may be
        // corrupted in transit. The fill boundary runs a round-trip check
        // (decompress and compare); in `Recover` mode a detected-corrupt
        // line is discarded and refetched (the MSHR waiters stay parked),
        // while `Silent` mode corrupts the cached compressed form in place
        // so the compression-map audit must catch it.
        if self.injector.active() {
            let compressed = shared
                .line_store
                .stored_compressed(&shared.mem, shared.cmap.as_mut(), addr)
                .is_some();
            if compressed && self.injector.corrupt_fill() {
                match self.injector.mode() {
                    FaultMode::Recover => {
                        self.lines_corrupted += 1;
                        self.corruptions_detected += 1;
                        self.corruption_refetches += 1;
                        if self.events_on {
                            self.events.push(TraceEvent {
                                cycle: now,
                                kind: TraceEventKind::FillCorrupt { sm: self.id, addr },
                            });
                        }
                        self.out_reqs.push_back(OutReq {
                            addr,
                            is_write: false,
                            flits: 1,
                        });
                        return;
                    }
                    FaultMode::Silent => {
                        let truth = shared.mem.read_line(addr);
                        if let Some(line) = shared.cmap.as_mut().and_then(|c| c.cached_mut(addr)) {
                            if self.injector.corrupt_line(line, &truth) {
                                self.lines_corrupted += 1;
                            }
                        }
                    }
                }
            }
        }
        enum Action {
            Complete(u64),
            Caba,
        }
        let act = match shared.design {
            Design::Base | Design::HwMemOnly { .. } => Action::Complete(0),
            Design::HwFull { alg, ideal } => {
                let compressed = shared
                    .line_store
                    .stored_compressed(&shared.mem, shared.cmap.as_mut(), addr)
                    .is_some();
                if compressed {
                    self.lines_decompressed += 1;
                    Action::Complete(if *ideal {
                        0
                    } else {
                        alg.hw_decompress_latency()
                    })
                } else {
                    Action::Complete(0)
                }
            }
            Design::Caba(_) => Action::Caba,
        };
        match act {
            Action::Complete(extra) => self.complete_fill_waiters(now, addr, extra),
            Action::Caba => {
                let compressed = shared
                    .line_store
                    .stored_compressed(&shared.mem, shared.cmap.as_mut(), addr)
                    .is_some();
                if !compressed {
                    self.complete_fill_waiters(now, addr, 0);
                    return;
                }
                // Find a waiting parent warp for the trigger's warp ID.
                let parent = self.mshr.complete(addr).into_iter().collect::<Vec<usize>>();
                let parent_warp = parent
                    .first()
                    .and_then(|&t| self.tickets[t].as_ref())
                    .map(|t| match t.warp {
                        WarpRef::App(s) => s,
                        WarpRef::Assist(_) => 0,
                    })
                    .unwrap_or(0);
                let info = FillInfo {
                    sm: self.id,
                    parent_warp,
                    addr,
                };
                let action = match shared.design {
                    Design::Caba(ctrl) => {
                        let mut svc = SmServices {
                            mem: &mut shared.mem,
                            cmap: shared.cmap.as_mut(),
                            line_store: &mut shared.line_store,
                            staging_base: STAGING_BASE + self.id as u64 * STAGING_SIZE,
                            sm_id: self.id,
                        };
                        ctrl.on_fill(&info, &mut svc)
                    }
                    _ => unreachable!("CABA path"),
                };
                match action {
                    FillAction::Complete { extra_latency } => {
                        self.lines_decompressed += 1;
                        self.l1.fill(addr, false, LINE_SIZE);
                        for t in parent {
                            self.resolve_ticket(t, now + self.cfg.l1_latency + extra_latency);
                        }
                    }
                    FillAction::Assist(launch) => {
                        self.pending_decomp.entry(addr).or_default().extend(parent);
                        self.queue_assist(launch);
                    }
                }
            }
        }
    }

    fn complete_fill_waiters(&mut self, now: u64, addr: u64, extra: u64) {
        let size = LINE_SIZE; // L1 stores lines uncompressed (§4.2.1).
        self.l1.fill(addr, false, size);
        let waiters = self.mshr.complete(addr);
        for t in waiters {
            self.resolve_ticket(t, now + self.cfg.l1_latency + extra);
        }
        if let Some(ws) = self.pending_decomp.remove(&addr) {
            for t in ws {
                self.resolve_ticket(t, now + self.cfg.l1_latency + extra);
            }
        }
    }

    // ----- LSU -------------------------------------------------------------

    fn lsu_cycle(&mut self, now: u64, shared: &mut SharedState<'_>) {
        let Some(op) = self.lsu.head().copied() else {
            return;
        };
        match op.kind {
            LineOpKind::AssistLocal { ticket } => {
                self.lsu.pop();
                if let Some(t) = ticket {
                    self.resolve_ticket(t, now + self.cfg.l1_latency);
                }
            }
            LineOpKind::Load { ticket } => {
                // A line already awaiting assist-warp decompression absorbs
                // new waiters directly (the load-replay buffering of Fig. 6).
                if let Some(ws) = self.pending_decomp.get_mut(&op.addr) {
                    ws.push(ticket);
                    self.lsu.pop();
                    return;
                }
                match self.l1.access(op.addr, false) {
                    AccessOutcome::Hit => {
                        self.lsu.pop();
                        let mut lat = self.cfg.l1_latency;
                        if self.cfg.l1_compressed {
                            let compressible = shared
                                .line_store
                                .stored_compressed(&shared.mem, shared.cmap.as_mut(), op.addr)
                                .is_some();
                            if compressible {
                                lat += self.cfg.l1_hit_decompress_penalty;
                            }
                        }
                        self.resolve_ticket(ticket, now + lat);
                    }
                    AccessOutcome::Miss => {
                        if self.mshr.pending(op.addr) {
                            self.mshr
                                .allocate(op.addr, ticket)
                                .expect("merge into pending entry");
                            self.lsu.pop();
                        } else if self.out_reqs.len() < 32 {
                            match self.mshr.allocate(op.addr, ticket) {
                                Ok(_) => {
                                    self.out_reqs.push_back(OutReq {
                                        addr: op.addr,
                                        is_write: false,
                                        flits: 1,
                                    });
                                    self.lsu.pop();
                                }
                                Err(_) => { /* MSHRs full: stall the LSU head. */ }
                            }
                        }
                        // else: outbound queue full, stall.
                    }
                }
            }
            LineOpKind::Store => {
                self.handle_store_line(now, op, shared);
            }
        }
    }

    fn handle_store_line(&mut self, _now: u64, op: LineOp, shared: &mut SharedState<'_>) {
        let addr = op.addr;
        let parent_warp = match op.warp {
            WarpRef::App(s) => s,
            WarpRef::Assist(_) => 0,
        };
        match shared.design {
            Design::Base => {
                self.lsu.pop();
                self.emit_write(addr, LINE_SIZE);
            }
            Design::HwMemOnly { .. } => {
                // Compression happens at the MC; the interconnect carries the
                // full line.
                self.lsu.pop();
                self.emit_write(addr, LINE_SIZE);
            }
            Design::HwFull { .. } => {
                // Dedicated core-side logic compresses (5-cycle pipeline, off
                // the critical path): the outgoing packet is compressed.
                self.lsu.pop();
                let size = shared
                    .line_store
                    .stored_size(&shared.mem, shared.cmap.as_mut(), addr);
                self.lines_compressed += u64::from(size < LINE_SIZE);
                self.emit_write(addr, size);
            }
            Design::Caba(_) => {
                if self.store_buffer.contains(&addr) {
                    // A compression assist is already in flight for this
                    // line; the newer store is coalesced into it.
                    self.lsu.pop();
                    return;
                }
                if self.store_buffer.len() >= self.cfg.store_buffer {
                    // Overflow: release uncompressed (§4.2.2 Ï).
                    self.lsu.pop();
                    self.store_buffer_overflows += 1;
                    shared.line_store.set_raw(addr);
                    self.emit_write(addr, LINE_SIZE);
                    return;
                }
                let info = StoreInfo {
                    sm: self.id,
                    parent_warp,
                    addr,
                };
                let action = match shared.design {
                    Design::Caba(ctrl) => {
                        let mut svc = SmServices {
                            mem: &mut shared.mem,
                            cmap: shared.cmap.as_mut(),
                            line_store: &mut shared.line_store,
                            staging_base: STAGING_BASE + self.id as u64 * STAGING_SIZE,
                            sm_id: self.id,
                        };
                        ctrl.on_store(&info, &mut svc)
                    }
                    _ => unreachable!("CABA path"),
                };
                self.lsu.pop();
                match action {
                    StoreAction::PassThrough => {
                        shared.line_store.set_raw(addr);
                        self.emit_write(addr, LINE_SIZE);
                    }
                    StoreAction::Assist(launch) => {
                        self.store_buffer.push_back(addr);
                        self.queue_assist(launch);
                    }
                }
            }
        }
    }

    // ----- issue -----------------------------------------------------------

    fn fetch_for(&self, warp: WarpRef, program: &Program) -> Option<Instr> {
        match warp {
            WarpRef::App(s) => {
                let w = self.warps[s].as_ref()?;
                if w.warp.done || w.warp.at_barrier {
                    return None;
                }
                program.fetch(w.warp.pc()).copied()
            }
            WarpRef::Assist(s) => {
                let a = self.assists[s].as_ref()?;
                if a.warp.done {
                    return None;
                }
                a.program.fetch(a.warp.pc()).copied()
            }
        }
    }

    fn check_issue(
        &self,
        now: u64,
        warp: WarpRef,
        instr: &Instr,
        lsu_free: bool,
    ) -> Result<(), IssueBlock> {
        let hazard = match warp {
            WarpRef::App(s) => self.warps[s].as_ref().expect("resident").warp.hazard(instr),
            WarpRef::Assist(s) => self.assists[s]
                .as_ref()
                .expect("resident")
                .warp
                .hazard(instr),
        };
        if hazard {
            return Err(IssueBlock::Hazard);
        }
        match instr.fu_class() {
            FuClass::Sp => Ok(()),
            FuClass::Sfu => {
                if now >= self.sfu_ready_at {
                    Ok(())
                } else {
                    Err(IssueBlock::ComputeStructural)
                }
            }
            FuClass::Mem => {
                let shared_space = matches!(
                    instr.op,
                    Op::Ld {
                        space: Space::Shared,
                        ..
                    } | Op::St {
                        space: Space::Shared,
                        ..
                    }
                );
                if shared_space {
                    // Shared accesses use the shared-memory pipe; they only
                    // need the mem issue slot.
                    if lsu_free {
                        Ok(())
                    } else {
                        Err(IssueBlock::MemStructural)
                    }
                } else if lsu_free && self.lsu.can_accept(1) {
                    Ok(())
                } else {
                    Err(IssueBlock::MemStructural)
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_issue(
        &mut self,
        now: u64,
        warp_ref: WarpRef,
        instr: Instr,
        kernel: &Kernel,
        shared: &mut SharedState<'_>,
        lsu_used: &mut bool,
    ) {
        // Build the thread context.
        let (ctx, is_assist) = match warp_ref {
            WarpRef::App(s) => {
                let w = self.warps[s].as_ref().expect("resident");
                (
                    ThreadCtx {
                        block_dim: kernel.dims().block_dim,
                        grid_dim: kernel.dims().grid_dim,
                        params: kernel.params(),
                        ctaid: w.ctaid,
                        warp_in_block: w.warp_in_block,
                        shared_base: self.shared_base_for(w.block_slot),
                    },
                    false,
                )
            }
            WarpRef::Assist(_) => (
                ThreadCtx {
                    block_dim: WARP_SIZE as u32,
                    grid_dim: 1,
                    params: &[],
                    ctaid: 0,
                    warp_in_block: 0,
                    shared_base: self.staging_base(),
                },
                true,
            ),
        };

        let outcome = match warp_ref {
            WarpRef::App(s) => {
                let w = self.warps[s].as_mut().expect("resident");
                w.warp.issued += 1;
                w.warp.last_issue = now;
                let out = execute(&mut w.warp, &instr, &ctx, &mut shared.mem);
                // `fetch_for` never offers a done warp, so `done` here means
                // this issue exited the last lanes.
                if w.warp.done {
                    self.done_unreaped += 1;
                }
                out
            }
            WarpRef::Assist(s) => {
                let a = self.assists[s].as_mut().expect("resident");
                a.warp.issued += 1;
                a.warp.last_issue = now;
                let out = execute(&mut a.warp, &instr, &ctx, &mut shared.mem);
                if a.warp.done {
                    self.assist_done_hint = true;
                }
                out
            }
        };

        if is_assist {
            self.assist_instructions += 1;
        } else {
            self.app_instructions += 1;
        }

        // Shared-space accesses: fixed latency through the shared pipe.
        if outcome.shared_access {
            self.shared_accesses += 1;
            *lsu_used = true;
            if let Some(dst) = outcome.dst {
                self.mark_pending_and_schedule(warp_ref, dst, now + self.cfg.shared_latency);
            }
            return;
        }

        // Global memory operations go through the LSU.
        if !outcome.lines_read.is_empty() {
            *lsu_used = true;
            let dst = outcome.dst;
            if let Some(d) = dst {
                self.mark_pending(warp_ref, d);
            }
            let n = outcome.lines_read.len() as u32;
            let ticket = self.alloc_ticket(Ticket {
                warp: warp_ref,
                dst,
                remaining: n,
            });
            let _ = n;
            if let WarpRef::App(s) = warp_ref {
                if let Some(w) = self.warps[s].as_mut() {
                    w.warp.outstanding_loads += 1;
                }
            }
            for addr in &outcome.lines_read {
                let kind = if is_assist {
                    LineOpKind::AssistLocal {
                        ticket: Some(ticket),
                    }
                } else {
                    LineOpKind::Load { ticket }
                };
                self.lsu.push(LineOp {
                    warp: warp_ref,
                    addr: *addr,
                    kind,
                });
            }
        } else if let Some(dst) = outcome.dst {
            // Pure compute result.
            let lat = match instr.fu_class() {
                FuClass::Sfu => {
                    self.sfu_ready_at = now + self.cfg.sfu_interval;
                    self.cfg.sfu_latency
                }
                _ => self.cfg.sp_latency,
            };
            self.mark_pending_and_schedule(warp_ref, dst, now + lat);
        }

        if !outcome.lines_written.is_empty() {
            *lsu_used = true;
            for addr in &outcome.lines_written {
                if !is_assist {
                    // Application stores change line contents: stale
                    // compressed forms must be dropped.
                    if let Some(cmap) = shared.cmap.as_mut() {
                        cmap.invalidate(*addr);
                    }
                    shared.line_store.clear(*addr);
                }
                let kind = if is_assist {
                    LineOpKind::AssistLocal { ticket: None }
                } else {
                    LineOpKind::Store
                };
                self.lsu.push(LineOp {
                    warp: warp_ref,
                    addr: *addr,
                    kind,
                });
            }
        }

        // Control effects.
        if outcome.at_barrier {
            if let WarpRef::App(s) = warp_ref {
                let bs = self.warps[s].as_ref().expect("resident").block_slot;
                self.barrier_arrive(bs);
            }
        }
        // Exited warps are reaped in `reap_warps` once their in-flight
        // loads drain, so stale writebacks can never touch a reused slot.
        let _ = outcome.exited;
    }

    fn mark_pending(&mut self, warp: WarpRef, reg: Reg) {
        match warp {
            WarpRef::App(s) => self.warps[s]
                .as_mut()
                .expect("resident")
                .warp
                .mark_pending(reg),
            WarpRef::Assist(s) => self.assists[s]
                .as_mut()
                .expect("resident")
                .warp
                .mark_pending(reg),
        }
    }

    fn mark_pending_and_schedule(&mut self, warp: WarpRef, reg: Reg, at: u64) {
        self.mark_pending(warp, reg);
        self.writebacks.push(Writeback {
            at,
            warp,
            reg: Some(reg),
        });
    }

    fn barrier_arrive(&mut self, block_slot: usize) {
        let release = {
            let b = self.blocks[block_slot].as_mut().expect("resident block");
            b.arrived += 1;
            let live = b.warp_slots.len() - b.warps_done;
            b.arrived >= live
        };
        if release {
            let slots = self.blocks[block_slot]
                .as_ref()
                .expect("resident block")
                .warp_slots
                .clone();
            for s in slots {
                if let Some(w) = self.warps[s].as_mut() {
                    w.warp.at_barrier = false;
                    if matches!(self.memo_app[s], SlotMemo::Barrier) {
                        self.set_memo(WarpRef::App(s), SlotMemo::Unknown);
                    }
                }
            }
            self.blocks[block_slot].as_mut().expect("resident").arrived = 0;
        }
    }

    fn retire_warp(&mut self, slot: usize, block_slot: usize) {
        let _ = slot;
        // Threads retired: all lanes of the warp's initial mask. For
        // simplicity we count 32 per warp (partial warps are rare in the
        // workloads).
        self.threads_retired += WARP_SIZE as u64;
        let block_done = {
            let b = self.blocks[block_slot].as_mut().expect("resident block");
            b.warps_done += 1;
            // A retiring warp may unblock a barrier.
            b.warps_done == b.warp_slots.len()
        };
        // Re-check barrier release.
        if !block_done {
            let (arrived, live) = {
                let b = self.blocks[block_slot].as_ref().expect("resident block");
                (b.arrived, b.warp_slots.len() - b.warps_done)
            };
            if live > 0 && arrived >= live {
                self.barrier_release(block_slot);
            }
        }
        if block_done {
            let b = self.blocks[block_slot].take().expect("resident block");
            self.resident_block_count -= 1;
            self.blocks_retired_total += 1;
            self.cand_dirty = true;
            for s in &b.warp_slots {
                self.warps[*s] = None;
            }
            self.used_regs -= b.regs;
            self.used_shared -= b.shared;
            let _ = b.ctaid;
        }
    }

    fn barrier_release(&mut self, block_slot: usize) {
        let slots = self.blocks[block_slot]
            .as_ref()
            .expect("resident block")
            .warp_slots
            .clone();
        for s in slots {
            if let Some(w) = self.warps[s].as_mut() {
                w.warp.at_barrier = false;
                if matches!(self.memo_app[s], SlotMemo::Barrier) {
                    self.set_memo(WarpRef::App(s), SlotMemo::Unknown);
                }
            }
        }
        if let Some(b) = self.blocks[block_slot].as_mut() {
            b.arrived = 0;
        }
    }

    /// Rebuilds the per-scheduler candidate caches. Runs only when warp or
    /// assist residency changed since the last cycle; scheduling order is
    /// identical to rebuilding from scratch every cycle because slot ages
    /// are fixed at launch and dynamic skips (done, at-barrier) happen in
    /// `fetch_for` at consideration time.
    fn rebuild_candidates(&mut self) {
        // Slots may have been reused since the memos were written.
        self.memo_app.fill(SlotMemo::Unknown);
        self.memo_assist.fill(SlotMemo::Unknown);
        let nsched = self.cfg.schedulers_per_sm;
        for v in &mut self.cand_his {
            v.clear();
        }
        for v in &mut self.cand_parents {
            v.clear();
        }
        for v in &mut self.cand_lows {
            v.clear();
        }
        let mut tmp = std::mem::take(&mut self.cand_scratch);
        tmp.clear();
        tmp.extend(
            self.warps
                .iter()
                .enumerate()
                .filter_map(|(i, w)| w.as_ref().map(|w| (w.age, i))),
        );
        tmp.sort_unstable();
        for &(_, i) in &tmp {
            self.cand_parents[i % nsched].push(i);
        }
        tmp.clear();
        tmp.extend(
            self.assists
                .iter()
                .enumerate()
                .filter_map(|(i, a)| a.as_ref().map(|a| (a.age, i))),
        );
        tmp.sort_unstable();
        for &(_, i) in &tmp {
            let a = self.assists[i].as_ref().expect("resident");
            let dst = match a.priority {
                AssistPriority::High => &mut self.cand_his[a.parent % nsched],
                AssistPriority::Low => &mut self.cand_lows[a.parent % nsched],
            };
            dst.push(i);
        }
        self.cand_scratch = tmp;
        self.cand_dirty = false;
        self.rebuild_class_masks();
    }

    /// Recomputes the position maps and [`ClassMasks`] from the candidate
    /// lists and the current memos. Runs after every list rebuild (memos
    /// just reset to `Unknown`, so all masks clear) and after snapshot
    /// restore (memos travel on the wire, so masks re-derive from them).
    fn rebuild_class_masks(&mut self) {
        self.masks_ok = self.cand_parents.iter().all(|l| l.len() <= 64)
            && self.cand_his.iter().all(|l| l.len() <= 64)
            && self.cand_lows.iter().all(|l| l.len() <= 64);
        self.slot_pos.fill(NO_POS);
        self.assist_pos.fill(NO_POS);
        if !self.masks_ok {
            return;
        }
        for sched in 0..self.cfg.schedulers_per_sm {
            let mut m = ClassMasks::default();
            for (pos, &slot) in self.cand_parents[sched].iter().enumerate() {
                self.slot_pos[slot] = pos as u8;
                m.assign(pos as u8, self.memo_app[slot]);
            }
            self.parent_masks[sched] = m;
            let mut m = ClassMasks::default();
            for (pos, &slot) in self.cand_his[sched].iter().enumerate() {
                self.assist_pos[slot] = pos as u8;
                m.assign(pos as u8, self.memo_assist[slot]);
            }
            self.hi_masks[sched] = m;
            let mut m = ClassMasks::default();
            for (pos, &slot) in self.cand_lows[sched].iter().enumerate() {
                self.assist_pos[slot] = pos as u8;
                m.assign(pos as u8, self.memo_assist[slot]);
            }
            self.low_masks[sched] = m;
        }
    }

    /// Classifies a scoreboard hazard for `wr` blocked on `instr` into its
    /// [`StallVerdict`]: waiting on memory data when the warp has loads in
    /// flight, control-reconvergence when the blocked instruction steers
    /// control flow, otherwise a plain in-pipeline dependency.
    ///
    /// Assist warps never raise their `outstanding_loads` (their load
    /// tickets resolve straight to writebacks), so their hazards classify
    /// as pipeline/control stalls — a small, documented approximation
    /// (DESIGN.md "Observability").
    fn classify_hazard(&self, wr: WarpRef, instr: &Instr) -> StallVerdict {
        let outstanding = match wr {
            WarpRef::App(s) => {
                self.warps[s]
                    .as_ref()
                    .expect("resident")
                    .warp
                    .outstanding_loads
            }
            WarpRef::Assist(_) => 0,
        };
        if outstanding > 0 {
            StallVerdict::HazardMem
        } else if instr.steers_control() {
            StallVerdict::HazardCtrl
        } else {
            StallVerdict::HazardSb
        }
    }

    /// Offers `wr` the issue slot: fetch, scoreboard/structural check, and
    /// issue on success. Returns whether it issued; on a block, folds the
    /// stall reason into `verdict` via [`fold_verdict`] (first blocked
    /// candidate in priority order wins within an evidence tier).
    #[allow(clippy::too_many_arguments)]
    fn consider(
        &mut self,
        now: u64,
        sched: usize,
        wr: WarpRef,
        kernel: &Kernel,
        shared: &mut SharedState<'_>,
        lsu_used: &mut bool,
        verdict: &mut Option<StallVerdict>,
    ) -> bool {
        // Memoized fast paths: each resolves exactly as the full
        // evaluation below would (see `SlotMemo` for the invariants).
        let memo = match wr {
            WarpRef::App(s) => self.memo_app[s],
            WarpRef::Assist(s) => self.memo_assist[s],
        };
        match memo {
            SlotMemo::Hazard(h) => {
                // The memo stores the classified verdict, so this folds
                // identically to the recomputed `IssueBlock::Hazard` path
                // below.
                *verdict = fold_verdict(*verdict, h);
                return false;
            }
            SlotMemo::Done => return false,
            SlotMemo::Barrier => {
                *verdict = fold_verdict(*verdict, StallVerdict::Barrier);
                return false;
            }
            SlotMemo::MemBlocked { shared } => {
                let open = !*lsu_used && (shared || self.lsu.can_accept(1));
                if !open {
                    *verdict = fold_verdict(*verdict, StallVerdict::MemStructural);
                    return false;
                }
                // The LSU path opened: fall through and issue for real.
            }
            SlotMemo::SfuBlocked => {
                if now < self.sfu_ready_at {
                    *verdict = fold_verdict(*verdict, StallVerdict::ComputeStructural);
                    return false;
                }
            }
            SlotMemo::Unknown => {}
        }
        let Some(instr) = self.fetch_for(wr, kernel.program()) else {
            // `fetch_for` skips done and barrier-parked warps. A live warp
            // parked at a barrier is the paper's synchronization stall.
            let mut tag = SlotMemo::Done;
            if let WarpRef::App(s) = wr {
                let w = &self.warps[s].as_ref().expect("resident").warp;
                if w.at_barrier && !w.done {
                    *verdict = fold_verdict(*verdict, StallVerdict::Barrier);
                    tag = SlotMemo::Barrier;
                }
            }
            self.set_memo(wr, tag);
            return false;
        };
        match self.check_issue(now, wr, &instr, !*lsu_used) {
            Ok(()) => {
                // The slot's state (PC, pending bits) is about to change:
                // whatever was memoized is void.
                self.set_memo(wr, SlotMemo::Unknown);
                self.do_issue(now, wr, instr, kernel, shared, lsu_used);
                self.greedy[sched] = Some(wr);
                true
            }
            Err(block) => {
                let v = match block {
                    IssueBlock::Hazard => {
                        let h = self.classify_hazard(wr, &instr);
                        self.set_memo(wr, SlotMemo::Hazard(h));
                        h
                    }
                    IssueBlock::MemStructural => {
                        let shared_pipe = matches!(
                            instr.op,
                            Op::Ld {
                                space: Space::Shared,
                                ..
                            } | Op::St {
                                space: Space::Shared,
                                ..
                            }
                        );
                        self.set_memo(
                            wr,
                            SlotMemo::MemBlocked {
                                shared: shared_pipe,
                            },
                        );
                        StallVerdict::MemStructural
                    }
                    IssueBlock::ComputeStructural => {
                        self.set_memo(wr, SlotMemo::SfuBlocked);
                        StallVerdict::ComputeStructural
                    }
                };
                *verdict = fold_verdict(*verdict, v);
                false
            }
        }
    }

    #[inline]
    fn set_memo(&mut self, wr: WarpRef, memo: SlotMemo) {
        match wr {
            WarpRef::App(s) => {
                self.memo_app[s] = memo;
                if self.masks_ok {
                    let pos = self.slot_pos[s];
                    if pos != NO_POS {
                        let sched = s % self.cfg.schedulers_per_sm;
                        self.parent_masks[sched].assign(pos, memo);
                    }
                }
            }
            WarpRef::Assist(s) => {
                self.memo_assist[s] = memo;
                if self.masks_ok {
                    let pos = self.assist_pos[s];
                    if pos != NO_POS {
                        if let Some(a) = self.assists[s].as_ref() {
                            let sched = a.parent % self.cfg.schedulers_per_sm;
                            let masks = match a.priority {
                                AssistPriority::High => &mut self.hi_masks[sched],
                                AssistPriority::Low => &mut self.low_masks[sched],
                            };
                            masks.assign(pos, memo);
                        }
                    }
                }
            }
        }
    }

    /// The candidate slot at `pos` of one of scheduler `sched`'s lists.
    #[inline]
    fn list_slot(&self, sched: usize, which: ListKind, pos: usize) -> usize {
        match which {
            ListKind::Parents => self.cand_parents[sched][pos],
            ListKind::HiAssist => self.cand_his[sched][pos],
            ListKind::LowAssist => self.cand_lows[sched][pos],
        }
    }

    /// Scans one candidate list in issue-priority order (rotated by
    /// `start` for round-robin), skipping `skip_slot` (the GTO greedy
    /// warp, offered separately). Returns whether a candidate issued;
    /// stall reasons fold into `verdict` exactly as a plain ordered scan
    /// would.
    ///
    /// With valid class masks the scan visits only candidates that could
    /// possibly issue this cycle: every memoized blocked class is either
    /// skipped wholesale (its shared openness condition is false) with
    /// one representative verdict fold, or merged back into the visit
    /// set. Verdict equivalence rests on [`fold_verdict`] keeping the
    /// *first* candidate of the highest evidence tier: members of one
    /// class share a tier, so only the first of each class (in scan
    /// order) can ever be kept, and the merge below folds class
    /// representatives and visited candidates in exact scan order.
    #[allow(clippy::too_many_arguments)]
    fn scan_list(
        &mut self,
        now: u64,
        sched: usize,
        which: ListKind,
        start: usize,
        skip_slot: Option<usize>,
        kernel: &Kernel,
        shared: &mut SharedState<'_>,
        lsu_used: &mut bool,
        verdict: &mut Option<StallVerdict>,
    ) -> bool {
        let len = match which {
            ListKind::Parents => self.cand_parents[sched].len(),
            ListKind::HiAssist => self.cand_his[sched].len(),
            ListKind::LowAssist => self.cand_lows[sched].len(),
        };
        if len == 0 {
            return false;
        }
        if !self.masks_ok {
            // Oversized list: plain ordered scan.
            for k in 0..len {
                let pos = if start == 0 { k } else { (start + k) % len };
                let slot = self.list_slot(sched, which, pos);
                if skip_slot == Some(slot) {
                    continue;
                }
                let wr = match which {
                    ListKind::Parents => WarpRef::App(slot),
                    _ => WarpRef::Assist(slot),
                };
                if self.consider(now, sched, wr, kernel, shared, lsu_used, verdict) {
                    return true;
                }
            }
            return false;
        }

        let masks = match which {
            ListKind::Parents => self.parent_masks[sched],
            ListKind::HiAssist => self.hi_masks[sched],
            ListKind::LowAssist => self.low_masks[sched],
        };
        let occupied: u64 = if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        let mut skip_bit = 0u64;
        if let Some(g) = skip_slot {
            let pos = if which == ListKind::Parents {
                self.slot_pos[g]
            } else {
                NO_POS
            };
            if pos != NO_POS && g % self.cfg.schedulers_per_sm == sched {
                skip_bit = 1u64 << pos;
            }
        }
        let live = !skip_bit;
        let hazard = masks.hazard & live;
        let barrier = masks.barrier & live;
        let done = masks.done & live;
        // Openness of each blocked class's shared condition. Nothing a
        // non-issuing candidate does can change these mid-scan, and the
        // scan ends at the first issue, so evaluating them once up front
        // matches the per-candidate re-check of a plain scan.
        let mem_g_open = !*lsu_used && self.lsu.can_accept(1);
        let mem_s_open = !*lsu_used;
        let sfu_open = now >= self.sfu_ready_at;
        let closed_mem_g = if mem_g_open { 0 } else { masks.mem_g & live };
        let closed_mem_s = if mem_s_open { 0 } else { masks.mem_s & live };
        let closed_sfu = if sfu_open { 0 } else { masks.sfu & live };
        let eval =
            occupied & live & !(hazard | barrier | done | closed_mem_g | closed_mem_s | closed_sfu);

        // Scan-order rank of a position under rotation.
        let rank = |pos: u32| -> u32 {
            if pos as usize >= start {
                pos - start as u32
            } else {
                pos + (len - start) as u32
            }
        };
        // First position of `mask` in scan order.
        let first = |mask: u64| -> u32 {
            let high = mask >> start << start;
            if high != 0 {
                high.trailing_zeros()
            } else {
                mask.trailing_zeros()
            }
        };

        // One representative (rank, verdict) per skipped class, sorted by
        // rank so the merge below folds them at their exact scan points.
        let mut sums = [(0u32, StallVerdict::Barrier); 4];
        let mut ns = 0;
        if hazard != 0 {
            let pos = first(hazard);
            let slot = self.list_slot(sched, which, pos as usize);
            let memo = match which {
                ListKind::Parents => self.memo_app[slot],
                _ => self.memo_assist[slot],
            };
            let SlotMemo::Hazard(h) = memo else {
                unreachable!("hazard mask desynced from memo");
            };
            sums[ns] = (rank(pos), h);
            ns += 1;
        }
        if barrier != 0 {
            sums[ns] = (rank(first(barrier)), StallVerdict::Barrier);
            ns += 1;
        }
        let closed_mem = closed_mem_g | closed_mem_s;
        if closed_mem != 0 {
            sums[ns] = (rank(first(closed_mem)), StallVerdict::MemStructural);
            ns += 1;
        }
        if closed_sfu != 0 {
            sums[ns] = (rank(first(closed_sfu)), StallVerdict::ComputeStructural);
            ns += 1;
        }
        sums[..ns].sort_unstable_by_key(|&(r, _)| r);

        let mut si = 0;
        let low_mask = if start == 0 { 0 } else { (1u64 << start) - 1 };
        for phase in [eval & !low_mask, eval & low_mask] {
            let mut m = phase;
            while m != 0 {
                let pos = m.trailing_zeros();
                m &= m - 1;
                let r = rank(pos);
                while si < ns && sums[si].0 < r {
                    *verdict = fold_verdict(*verdict, sums[si].1);
                    si += 1;
                }
                let slot = self.list_slot(sched, which, pos as usize);
                let wr = match which {
                    ListKind::Parents => WarpRef::App(slot),
                    _ => WarpRef::Assist(slot),
                };
                if self.consider(now, sched, wr, kernel, shared, lsu_used, verdict) {
                    return true;
                }
            }
        }
        while si < ns {
            *verdict = fold_verdict(*verdict, sums[si].1);
            si += 1;
        }
        false
    }

    fn schedule(
        &mut self,
        now: u64,
        kernel: &Kernel,
        shared: &mut SharedState<'_>,
        lsu_used: &mut bool,
    ) {
        if self.cand_dirty {
            self.rebuild_candidates();
        }
        for sched in 0..self.cfg.schedulers_per_sm {
            let mut verdict: Option<StallVerdict> = None;

            // High-priority assist warps first (decompression precedes
            // parent execution, §3.2.3)...
            let mut issued = self.scan_list(
                now,
                sched,
                ListKind::HiAssist,
                0,
                None,
                kernel,
                shared,
                lsu_used,
                &mut verdict,
            );
            // A high-priority assist issuing ahead of parent warps is the
            // Fig. 13/14 "stolen" issue slot.
            let issued_hi = issued;

            // ...then parent warps in policy order.
            if !issued {
                match self.cfg.scheduler {
                    SchedulerPolicy::Gto => {
                        // The greedy warp first, then oldest-first.
                        let greedy = self.greedy[sched];
                        let mut skip = None;
                        if let Some(WarpRef::App(g)) = greedy {
                            skip = Some(g);
                            if self.warps[g].is_some() && g % self.cfg.schedulers_per_sm == sched {
                                issued = self.consider(
                                    now,
                                    sched,
                                    WarpRef::App(g),
                                    kernel,
                                    shared,
                                    lsu_used,
                                    &mut verdict,
                                );
                            }
                        }
                        if !issued {
                            issued = self.scan_list(
                                now,
                                sched,
                                ListKind::Parents,
                                0,
                                skip,
                                kernel,
                                shared,
                                lsu_used,
                                &mut verdict,
                            );
                        }
                    }
                    SchedulerPolicy::OldestFirst => {
                        issued = self.scan_list(
                            now,
                            sched,
                            ListKind::Parents,
                            0,
                            None,
                            kernel,
                            shared,
                            lsu_used,
                            &mut verdict,
                        );
                    }
                    SchedulerPolicy::RoundRobin => {
                        let len = self.cand_parents[sched].len();
                        let start = if len > 0 {
                            (self.rr_cursor[sched] as usize) % len
                        } else {
                            0
                        };
                        issued = self.scan_list(
                            now,
                            sched,
                            ListKind::Parents,
                            start,
                            None,
                            kernel,
                            shared,
                            lsu_used,
                            &mut verdict,
                        );
                    }
                }
            }

            // Low-priority assist warps: only in otherwise-idle slots — the
            // slot would otherwise be wasted on a stall, which is exactly
            // the "idle issue slot" the paper's low-priority assist warps
            // reclaim (§3.2.3).
            let issued_before_low = issued;
            if !issued {
                issued = self.scan_list(
                    now,
                    sched,
                    ListKind::LowAssist,
                    0,
                    None,
                    kernel,
                    shared,
                    lsu_used,
                    &mut verdict,
                );
            }

            let slot = if issued {
                if issued_hi {
                    self.assist_slots_stolen += 1;
                    StallKind::IssuedAssist
                } else if !issued_before_low {
                    self.assist_slots_reclaimed += 1;
                    StallKind::IssuedAssist
                } else {
                    StallKind::IssuedApp
                }
            } else {
                verdict.map(StallVerdict::bucket).unwrap_or(StallKind::Idle)
            };
            self.breakdown.record(slot);
            self.last_slots[sched] = slot;
            self.rr_cursor[sched] = self.rr_cursor[sched].wrapping_add(1);
        }
    }

    // ----- main per-cycle entry --------------------------------------------

    /// Advances this SM by one cycle.
    ///
    /// When the previous executed cycle proved the SM dormant and `now`
    /// is still short of its self-wake horizon, the whole pipeline walk
    /// collapses to [`Sm::skip_ahead`]`(1)`: the dormancy invariant
    /// guarantees a full cycle would record the same issue slots and
    /// change nothing else. This per-SM fast tick is what keeps a
    /// memory-bound steady state cheap even when the *global* next-event
    /// skip cannot fire because other SMs or the interconnect are busy.
    pub fn cycle(&mut self, now: u64, kernel: &Kernel, shared: &mut SharedState<'_>) {
        if self.dormant && self.dorm_horizon.is_none_or(|h| now < h) {
            self.skip_ahead(1);
            return;
        }
        let pre = self.activity_signature();
        self.process_writebacks(now);
        self.reap_warps();
        self.finish_assists(now, shared);
        self.deploy_assist(now);
        let mut lsu_used = false;
        self.schedule(now, kernel, shared, &mut lsu_used);
        self.lsu_cycle(now, shared);
        if let Some((ids, shard)) = &mut self.metrics {
            shard.set_max(ids.peak_lsu_pending, self.lsu.pending() as u64);
        }
        self.update_dormancy(now, pre);
    }

    /// A cheap fingerprint of every SM-internal mutation path. Each way a
    /// cycle can change future behaviour — an issue, an LSU pop, a
    /// writeback landing, a reap, an assist deploy/finish, a store-buffer
    /// or decompression-queue drain, an outbound request — moves at least
    /// one of these counters, so `pre == post` proves the cycle was a
    /// no-op. The L1 access total is included because a *stalled* LSU
    /// head (miss with MSHRs or the outbound queue full) re-probes the
    /// cache every cycle, moving hit/miss stats and the replacement
    /// clock even though nothing architectural advances — such cycles
    /// must not be treated as skippable. Hazard-memo writes are
    /// deliberately excluded: the memoized fold is defined to resolve
    /// identically to the recomputed one, so they never change a verdict.
    fn activity_signature(&self) -> [u64; 12] {
        [
            self.app_instructions,
            self.assist_instructions,
            self.lsu.processed(),
            self.l1.hits() + self.l1.misses(),
            self.writebacks.len() as u64,
            self.assist_pending.len() as u64,
            self.active_assist_count as u64,
            u64::from(self.done_unreaped),
            self.out_reqs.len() as u64,
            self.store_buffer.len() as u64,
            self.pending_decomp.len() as u64,
            self.assist_launches + self.threads_retired,
        ]
    }

    fn update_dormancy(&mut self, now: u64, pre: [u64; 12]) {
        self.dormant = false;
        self.dorm_horizon = None;
        if self.activity_signature() != pre {
            return;
        }
        // RoundRobin rotates its scan start every cycle, so even a frozen
        // machine state can fold a different stall verdict each cycle;
        // with parent candidates present the recorded buckets are not
        // constant and the span cannot be credited in bulk.
        if self.cfg.scheduler == SchedulerPolicy::RoundRobin
            && self.cand_parents.iter().any(|c| !c.is_empty())
        {
            return;
        }
        let mut horizon: Option<u64> = None;
        let fold = |t: u64, h: &mut Option<u64>| *h = Some(h.map_or(t, |a: u64| a.min(t)));
        for wb in &self.writebacks {
            fold(wb.at.max(now + 1), &mut horizon);
        }
        if self.sfu_ready_at > now {
            fold(self.sfu_ready_at, &mut horizon);
        }
        self.dormant = true;
        self.dorm_horizon = horizon;
    }

    /// True when the last executed cycle proved this SM frozen — see the
    /// `dormant` field. Cleared by any external mutation (fill, block
    /// launch, request requeue) and on snapshot restore.
    pub fn dormant(&self) -> bool {
        self.dormant
    }

    /// The next cycle at which a frozen SM acts on its own (earliest
    /// pending writeback or SFU readiness); `None` when only external
    /// input can wake it. Meaningful only while [`Sm::dormant`].
    pub fn skip_horizon(&self) -> Option<u64> {
        self.dorm_horizon
    }

    /// Credits `span` skipped cycles in bulk: each scheduler re-records
    /// the bucket its slot resolved to in the dormant cycle (`Idle` on a
    /// quiesced SM, matching [`Sm::idle_tick`]) and advances its
    /// round-robin cursor — exactly what `span` per-cycle calls would do.
    pub fn skip_ahead(&mut self, span: u64) {
        if self.quiesced() {
            for sched in 0..self.cfg.schedulers_per_sm {
                self.breakdown.record_n(StallKind::Idle, span);
                self.rr_cursor[sched] = self.rr_cursor[sched].wrapping_add(span);
            }
            return;
        }
        debug_assert!(self.dormant, "skip_ahead on an active SM");
        for sched in 0..self.cfg.schedulers_per_sm {
            self.breakdown.record_n(self.last_slots[sched], span);
            self.rr_cursor[sched] = self.rr_cursor[sched].wrapping_add(span);
        }
    }

    /// The cheap stand-in for [`Sm::cycle`] on a quiesced SM. A full cycle
    /// on an empty SM has exactly two architectural effects — each
    /// scheduler records an `Idle` issue slot (Figure 1 data) and advances
    /// its round-robin cursor — so this must replicate both, and nothing
    /// else, for skipped SMs to stay bit-identical with unskipped runs.
    pub fn idle_tick(&mut self) {
        debug_assert!(self.quiesced());
        for sched in 0..self.cfg.schedulers_per_sm {
            self.breakdown.record(StallKind::Idle);
            self.rr_cursor[sched] = self.rr_cursor[sched].wrapping_add(1);
        }
    }

    /// Retires warps whose lanes all exited and whose in-flight results have
    /// drained. Warp slots (and registers/shared memory) are released only
    /// when the *whole block* retires — freeing them per-warp would let a
    /// newly launched block be clobbered when the old block completes.
    fn reap_warps(&mut self) {
        if self.done_unreaped == 0 {
            return;
        }
        for slot in 0..self.warps.len() {
            let ready = matches!(
                &self.warps[slot],
                Some(w) if !w.retired
                    && w.warp.done
                    && !w.warp.any_pending()
                    && w.warp.outstanding_loads == 0
            );
            if ready {
                let bs = {
                    let w = self.warps[slot].as_mut().expect("checked");
                    w.retired = true;
                    w.block_slot
                };
                self.done_unreaped -= 1;
                self.retire_warp(slot, bs);
            }
        }
    }

    // ----- statistics ------------------------------------------------------

    /// Monotonic blocks-retired count (the CTA-dispatch gate signal).
    pub(crate) fn blocks_retired_total(&self) -> u64 {
        self.blocks_retired_total
    }

    /// Adds this SM's counters into `stats`.
    pub fn export_stats(&self, stats: &mut crate::stats::RunStats) {
        stats.app_instructions += self.app_instructions;
        stats.assist_instructions += self.assist_instructions;
        stats.breakdown.merge(&self.breakdown);
        stats.l1_hits += self.l1.hits();
        stats.l1_misses += self.l1.misses();
        stats.shared_accesses += self.shared_accesses;
        stats.threads_retired += self.threads_retired;
        stats.assist_launches += self.assist_launches;
        stats.store_buffer_overflows += self.store_buffer_overflows;
        stats.lines_compressed += self.lines_compressed;
        stats.lines_decompressed += self.lines_decompressed;
        stats.lines_corrupted += self.lines_corrupted;
        stats.corruptions_detected += self.corruptions_detected;
        stats.corruption_refetches += self.corruption_refetches;
        stats.assist_slots_stolen += self.assist_slots_stolen;
        stats.assist_slots_reclaimed += self.assist_slots_reclaimed;
    }

    /// This SM's metric shard (`MetricsLevel::Full` only); the GPU merges
    /// shards in SM index order at export.
    pub(crate) fn metric_shard(&self) -> Option<&MetricShard> {
        self.metrics.as_ref().map(|(_, s)| s)
    }

    /// Moves this SM's buffered instant events into `out` (called by the
    /// GPU tracer in SM index order).
    pub(crate) fn drain_events(&mut self, out: &mut Vec<TraceEvent>) {
        out.append(&mut self.events);
    }

    // ----- integrity layer --------------------------------------------------

    /// A value that strictly increases whenever this SM makes forward
    /// progress (used by the GPU watchdog).
    pub fn progress_signature(&self) -> u64 {
        self.app_instructions
            .wrapping_add(self.assist_instructions)
            .wrapping_add(self.lsu.processed())
            .wrapping_add(self.threads_retired)
    }

    /// Lines with an outstanding L1 MSHR entry.
    pub fn mshr_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.mshr.iter().map(|(addr, _)| addr)
    }

    /// True when a read of `addr` is still queued toward the interconnect.
    pub fn has_out_req(&self, addr: u64) -> bool {
        self.out_reqs.iter().any(|r| r.addr == addr && !r.is_write)
    }

    fn classify_warp(&self, now: u64, slot: usize, program: &Program) -> WarpState {
        let w = self.warps[slot].as_ref().expect("resident");
        if w.warp.done {
            return WarpState::Done;
        }
        if w.warp.at_barrier {
            return WarpState::AtBarrier;
        }
        let Some(instr) = self.fetch_for(WarpRef::App(slot), program) else {
            return WarpState::Ready;
        };
        match self.check_issue(now, WarpRef::App(slot), &instr, true) {
            Ok(()) => WarpState::Ready,
            Err(IssueBlock::Hazard) => WarpState::DataDependence {
                outstanding_loads: w.warp.outstanding_loads,
            },
            Err(IssueBlock::MemStructural) => WarpState::MemoryStructural,
            Err(IssueBlock::ComputeStructural) => WarpState::ComputeStructural,
        }
    }

    /// Captures this SM's occupancy and per-warp state for a hang report.
    pub fn snapshot(&self, now: u64, kernel: &Kernel) -> SmSnapshot {
        let warps = self
            .warps
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.as_ref().map(|sw| (i, sw)))
            .filter(|(_, sw)| !sw.retired)
            .map(|(i, sw)| WarpSnapshot {
                slot: i,
                ctaid: sw.ctaid,
                pc: sw.warp.pc(),
                active_mask: sw.warp.active_mask(),
                state: self.classify_warp(now, i, kernel.program()),
            })
            .collect();
        SmSnapshot {
            id: self.id,
            warps,
            mshr_outstanding: self.mshr.outstanding(),
            mshr_capacity: self.mshr.capacity(),
            lsu_pending: self.lsu.pending(),
            store_buffer: self.store_buffer.len(),
            out_reqs: self.out_reqs.len(),
            assists_active: self.assists.iter().filter(|a| a.is_some()).count(),
            pending_decomp: self.pending_decomp.len(),
        }
    }

    /// Checks this SM's structural invariants (occupancy bounds, scoreboard
    /// and SIMT-stack consistency), appending any violations to `out`.
    pub fn audit_into(&self, cycle: u64, out: &mut Vec<Violation>) {
        let component = Component::Sm(self.id);
        let mut flag = |detail: String| {
            out.push(Violation {
                cycle,
                component,
                detail,
            })
        };

        // Fig. 1 conservation: the seven taxonomy buckets are mutually
        // exclusive and exhaustive, so they must sum to exactly one record
        // per scheduler per elapsed cycle (`idle_tick` keeps this true for
        // clock-skipped SMs).
        let expected_slots = cycle.saturating_mul(self.cfg.schedulers_per_sm as u64);
        if self.breakdown.total() != expected_slots {
            flag(format!(
                "issue-slot taxonomy sums to {} but {} scheduler-slots have elapsed \
                 ({} cycles x {} schedulers)",
                self.breakdown.total(),
                expected_slots,
                cycle,
                self.cfg.schedulers_per_sm
            ));
        }

        if self.mshr.outstanding() > self.mshr.capacity() {
            flag(format!(
                "L1 MSHR holds {} lines, capacity {}",
                self.mshr.outstanding(),
                self.mshr.capacity()
            ));
        }
        if self.store_buffer.len() > self.cfg.store_buffer {
            flag(format!(
                "store buffer holds {} lines, capacity {}",
                self.store_buffer.len(),
                self.cfg.store_buffer
            ));
        }

        // Live load tickets per application warp slot.
        let mut ticket_loads: FxHashMap<usize, u32> = FxHashMap::default();
        for t in self.tickets.iter().flatten() {
            if let WarpRef::App(s) = t.warp {
                *ticket_loads.entry(s).or_default() += 1;
            }
        }
        for (slot, sw) in self
            .warps
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.as_ref().map(|sw| (i, sw)))
        {
            let tickets = ticket_loads.get(&slot).copied().unwrap_or(0);
            if sw.warp.outstanding_loads != tickets {
                flag(format!(
                    "warp {slot} scoreboard counts {} outstanding loads but {} load tickets are live",
                    sw.warp.outstanding_loads, tickets
                ));
            }
            if sw.warp.done && sw.warp.active_mask() != 0 {
                flag(format!(
                    "warp {slot} is done but still has active mask {:#010x}",
                    sw.warp.active_mask()
                ));
            }
            if sw.warp.simt_depth() > 64 {
                flag(format!(
                    "warp {slot} SIMT stack depth {} exceeds sanity bound 64",
                    sw.warp.simt_depth()
                ));
            }
            for r in sw.warp.pending_regs() {
                let wr = WarpRef::App(slot);
                let has_producer = self
                    .writebacks
                    .iter()
                    .any(|wb| wb.warp == wr && wb.reg == Some(r))
                    || self
                        .tickets
                        .iter()
                        .flatten()
                        .any(|t| t.warp == wr && t.dst == Some(r));
                if !has_producer {
                    flag(format!(
                        "warp {slot} register r{} is pending with no producer in flight",
                        r.0
                    ));
                }
            }
        }

        for b in self.blocks.iter().flatten() {
            let live = b.warp_slots.len() - b.warps_done;
            if b.arrived > live {
                flag(format!(
                    "block cta {} counts {} barrier arrivals but only {} live warps",
                    b.ctaid, b.arrived, live
                ));
            }
        }
    }

    /// Diagnostic one-line state dump (used by harness debugging).
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        let warps: Vec<String> = self
            .warps
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.as_ref().map(|w| (i, w)))
            .map(|(i, w)| {
                format!(
                    "w{}[pc={} done={} bar={} out={} pend={}]",
                    i,
                    w.warp.pc(),
                    w.warp.done,
                    w.warp.at_barrier,
                    w.warp.outstanding_loads,
                    w.warp.any_pending()
                )
            })
            .collect();
        let assists: Vec<String> = self
            .assists
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_ref().map(|a| (i, a)))
            .map(|(i, a)| {
                format!(
                    "a{}[pc={} done={} pend={} prio={:?}]",
                    i,
                    a.warp.pc(),
                    a.warp.done,
                    a.warp.any_pending(),
                    a.priority
                )
            })
            .collect();
        format!(
            "SM{}: blocks={} lsu={} mshr={} decomp={} sbuf={} outq={} apend={} wb={} | {} | {}",
            self.id,
            self.resident_blocks(),
            self.lsu.pending(),
            self.mshr.outstanding(),
            self.pending_decomp.len(),
            self.store_buffer.len(),
            self.out_reqs.len(),
            self.assist_pending.len(),
            self.writebacks.len(),
            warps.join(" "),
            assists.join(" ")
        )
    }

    // ----- binary checkpoint (see [`crate::snapshot`]) ----------------------

    /// Serializes the SM's full architectural state. Config-derived
    /// geometry (slot counts, capacities) is not written — it is validated
    /// against the restore target's configuration by [`Sm::snap_load`].
    /// Derived scheduling state (candidate caches, residency counters) is
    /// recomputed on load, which is bit-identical to carrying it: the
    /// caches rebuild deterministically from slot ages. The hazard memos
    /// are carried, not recomputed — a memoized verdict can outlive the
    /// state it was classified from (see `snap_load`).
    pub(crate) fn snap_save(&self, w: &mut SnapshotWriter) {
        w.usize(self.blocks.len());
        for b in &self.blocks {
            match b {
                None => w.bool(false),
                Some(b) => {
                    w.bool(true);
                    w.u32(b.ctaid);
                    b.warp_slots.save(w);
                    w.usize(b.warps_done);
                    w.usize(b.arrived);
                    w.u32(b.regs);
                    w.u32(b.shared);
                }
            }
        }
        w.usize(self.warps.len());
        for sw in &self.warps {
            match sw {
                None => w.bool(false),
                Some(sw) => {
                    w.bool(true);
                    sw.warp.save(w);
                    w.usize(sw.block_slot);
                    w.u32(sw.ctaid);
                    w.u32(sw.warp_in_block);
                    w.u64(sw.age);
                    w.bool(sw.retired);
                }
            }
        }
        w.usize(self.assists.len());
        for a in &self.assists {
            match a {
                None => w.bool(false),
                Some(a) => {
                    w.bool(true);
                    a.warp.save(w);
                    w.u64(a.program.content_hash());
                    a.priority.save(w);
                    w.u64(a.tag);
                    w.u64(a.age);
                    w.usize(a.parent);
                }
            }
        }
        w.usize(self.assist_pending.len());
        for l in &self.assist_pending {
            save_launch(l, w);
        }
        w.usize(self.writebacks.len());
        for wb in &self.writebacks {
            w.u64(wb.at);
            wb.warp.save(w);
            wb.reg.save(w);
        }
        w.usize(self.tickets.len());
        for t in &self.tickets {
            match t {
                None => w.bool(false),
                Some(t) => {
                    w.bool(true);
                    t.warp.save(w);
                    t.dst.save(w);
                    w.u32(t.remaining);
                }
            }
        }
        self.free_tickets.save(w);
        self.lsu.snap_save(w);
        self.l1.snap_save(w);
        self.mshr.snap_save(w);
        let mut decomp: Vec<u64> = self.pending_decomp.keys().copied().collect();
        decomp.sort_unstable();
        w.usize(decomp.len());
        for addr in decomp {
            w.u64(addr);
            self.pending_decomp[&addr].save(w);
        }
        self.store_buffer.save(w);
        self.out_reqs.save(w);
        w.u64(self.sfu_ready_at);
        w.bool(self.cand_dirty);
        save_slot_memo(&self.memo_app, w);
        save_slot_memo(&self.memo_assist, w);
        self.greedy.save(w);
        self.rr_cursor.save(w);
        w.u32(self.used_regs);
        w.u32(self.used_shared);
        w.u64(self.age_seq);
        self.injector.snap_save(w);
        // Metric shard, presence-prefixed: the config hash deliberately
        // excludes observability, so a restore target may collect metrics
        // the snapshot lacks (fresh zero shard kept) or vice versa
        // (decoded and discarded in `snap_load`).
        match &self.metrics {
            None => w.bool(false),
            Some((_, shard)) => {
                w.bool(true);
                shard.save(w);
            }
        }
        self.breakdown.save(w);
        w.u64(self.app_instructions);
        w.u64(self.assist_instructions);
        w.u64(self.shared_accesses);
        w.u64(self.threads_retired);
        w.u64(self.assist_launches);
        w.u64(self.store_buffer_overflows);
        w.u64(self.lines_compressed);
        w.u64(self.lines_decompressed);
        w.u64(self.lines_corrupted);
        w.u64(self.corruptions_detected);
        w.u64(self.corruption_refetches);
        w.u64(self.assist_slots_stolen);
        w.u64(self.assist_slots_reclaimed);
    }

    /// Restores the SM in place from bytes written by [`Sm::snap_save`].
    /// Assist programs are stored by content hash and resolved against
    /// `programs` (kernel program + controller subroutines).
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes, on geometry that does not match this SM's
    /// configuration, or on a program hash absent from `programs`.
    pub(crate) fn snap_load(
        &mut self,
        r: &mut SnapshotReader<'_>,
        programs: &FxHashMap<u64, Arc<Program>>,
    ) -> Result<(), SnapError> {
        if r.usize()? != self.blocks.len() {
            return Err(SnapError::Invariant {
                what: "sm block slot count mismatch",
            });
        }
        for slot in self.blocks.iter_mut() {
            *slot = if r.bool()? {
                let b = Block {
                    ctaid: r.u32()?,
                    warp_slots: Vec::<usize>::load(r)?,
                    warps_done: r.usize()?,
                    arrived: r.usize()?,
                    regs: r.u32()?,
                    shared: r.u32()?,
                };
                if b.warp_slots.iter().any(|&s| s >= self.cfg.warps_per_sm) {
                    return Err(SnapError::Invariant {
                        what: "block warp slot out of range",
                    });
                }
                Some(b)
            } else {
                None
            };
        }
        if r.usize()? != self.warps.len() {
            return Err(SnapError::Invariant {
                what: "sm warp slot count mismatch",
            });
        }
        for slot in self.warps.iter_mut() {
            *slot = if r.bool()? {
                Some(SmWarp {
                    warp: Warp::load(r)?,
                    block_slot: r.usize()?,
                    ctaid: r.u32()?,
                    warp_in_block: r.u32()?,
                    age: r.u64()?,
                    retired: r.bool()?,
                })
            } else {
                None
            };
        }
        if r.usize()? != self.assists.len() {
            return Err(SnapError::Invariant {
                what: "sm assist slot count mismatch",
            });
        }
        for slot in self.assists.iter_mut() {
            *slot = if r.bool()? {
                let warp = Warp::load(r)?;
                let hash = r.u64()?;
                let program = programs.get(&hash).cloned().ok_or(SnapError::Invariant {
                    what: "assist program hash not resolvable",
                })?;
                Some(AssistRt {
                    warp,
                    program,
                    priority: AssistPriority::load(r)?,
                    tag: r.u64()?,
                    age: r.u64()?,
                    parent: r.usize()?,
                })
            } else {
                None
            };
        }
        let n = r.seq_len("assist_pending", 2)?;
        self.assist_pending.clear();
        for _ in 0..n {
            self.assist_pending.push_back(load_launch(r, programs)?);
        }
        let n = r.seq_len("writebacks", 2)?;
        self.writebacks.clear();
        for _ in 0..n {
            self.writebacks.push(Writeback {
                at: r.u64()?,
                warp: WarpRef::load(r)?,
                reg: Option::<Reg>::load(r)?,
            });
        }
        let n = r.seq_len("tickets", 1)?;
        self.tickets.clear();
        for _ in 0..n {
            self.tickets.push(if r.bool()? {
                Some(Ticket {
                    warp: WarpRef::load(r)?,
                    dst: Option::<Reg>::load(r)?,
                    remaining: r.u32()?,
                })
            } else {
                None
            });
        }
        self.free_tickets = Vec::<usize>::load(r)?;
        if self.free_tickets.iter().any(|&i| i >= self.tickets.len()) {
            return Err(SnapError::Invariant {
                what: "free ticket index out of range",
            });
        }
        self.lsu.snap_load(r)?;
        self.l1.snap_load(r)?;
        self.mshr.snap_load(r)?;
        let n = r.seq_len("pending_decomp", 9)?;
        self.pending_decomp.clear();
        for _ in 0..n {
            let addr = r.u64()?;
            let waiters = Vec::<usize>::load(r)?;
            self.pending_decomp.insert(addr, waiters);
        }
        self.store_buffer = VecDeque::<u64>::load(r)?;
        self.out_reqs = VecDeque::<OutReq>::load(r)?;
        self.sfu_ready_at = r.u64()?;
        let cand_dirty = r.bool()?;
        let memo_app = load_slot_memo(r, self.cfg.warps_per_sm)?;
        let memo_assist = load_slot_memo(r, self.cfg.max_assist_warps)?;
        let greedy = Vec::<Option<WarpRef>>::load(r)?;
        let rr_cursor = Vec::<u64>::load(r)?;
        if greedy.len() != self.cfg.schedulers_per_sm
            || rr_cursor.len() != self.cfg.schedulers_per_sm
        {
            return Err(SnapError::Invariant {
                what: "scheduler count mismatch",
            });
        }
        self.greedy = greedy;
        self.rr_cursor = rr_cursor;
        self.used_regs = r.u32()?;
        self.used_shared = r.u32()?;
        self.age_seq = r.u64()?;
        self.injector.snap_load(r)?;
        if r.bool()? {
            let shard = MetricShard::load(r)?;
            if let Some((_, s)) = &mut self.metrics {
                *s = shard;
            }
        }
        self.breakdown = IssueBreakdown::load(r)?;
        self.app_instructions = r.u64()?;
        self.assist_instructions = r.u64()?;
        self.shared_accesses = r.u64()?;
        self.threads_retired = r.u64()?;
        self.assist_launches = r.u64()?;
        self.store_buffer_overflows = r.u64()?;
        self.lines_compressed = r.u64()?;
        self.lines_decompressed = r.u64()?;
        self.lines_corrupted = r.u64()?;
        self.corruptions_detected = r.u64()?;
        self.corruption_refetches = r.u64()?;
        self.assist_slots_stolen = r.u64()?;
        self.assist_slots_reclaimed = r.u64()?;
        // Derived state: recomputed, never trusted from the wire.
        self.resident_block_count = self.blocks.iter().filter(|b| b.is_some()).count();
        self.active_assist_count = self.assists.iter().filter(|a| a.is_some()).count();
        self.low_assist_count = self
            .assists
            .iter()
            .flatten()
            .filter(|a| a.priority == AssistPriority::Low)
            .count();
        // Conservative: a spurious sweep is free, a missed retire is not.
        self.assist_done_hint = true;
        self.high_pending_count = self
            .assist_pending
            .iter()
            .filter(|l| l.priority == AssistPriority::High)
            .count();
        self.done_unreaped = self
            .warps
            .iter()
            .flatten()
            .filter(|w| !w.retired && w.warp.done)
            .count() as u32;
        // Candidate lists are a pure function of residency and slot ages,
        // so they rebuild rather than travel. The hazard memos are NOT
        // pure: a memoized verdict legitimately outlives the state it was
        // computed from (a fill drops `outstanding_loads` before the
        // writeback clears the pending bit and the memo), so recomputing
        // them can flip a Fig. 1 bucket for one cycle — they restore from
        // the wire, as does the rebuild-pending flag.
        self.rebuild_candidates();
        self.cand_dirty = cand_dirty;
        self.memo_app = memo_app;
        self.memo_assist = memo_assist;
        // The class masks mirror the memos, which just changed under them.
        self.rebuild_class_masks();
        // The dormancy cache is recomputed, never restored: the next real
        // cycle is bit-identical to the skipped one it replaces, so losing
        // the cache costs one executed cycle and changes nothing else.
        self.dormant = false;
        self.dorm_horizon = None;
        self.events.clear();
        Ok(())
    }

    /// The issue breakdown recorded so far.
    pub fn breakdown(&self) -> &IssueBreakdown {
        &self.breakdown
    }

    /// Instructions issued by application warps.
    pub fn app_instructions(&self) -> u64 {
        self.app_instructions
    }

    /// Instructions issued by assist warps.
    pub fn assist_instructions(&self) -> u64 {
        self.assist_instructions
    }
}

impl SnapshotState for OutReq {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.addr);
        w.bool(self.is_write);
        w.u32(self.flits);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(OutReq {
            addr: r.u64()?,
            is_write: r.bool()?,
            flits: r.u32()?,
        })
    }
}

/// Serializes one queued assist launch; the program travels by content
/// hash (see [`caba_isa::Program::content_hash`]).
fn save_launch(l: &AssistLaunch, w: &mut SnapshotWriter) {
    w.u64(l.program.content_hash());
    w.usize(l.parent_warp);
    l.priority.save(w);
    l.live_in.save(w);
    w.u32(l.active_mask);
    w.u64(l.tag);
}

/// Decodes one assist launch, resolving its program hash against the
/// restore-time program table.
fn load_launch(
    r: &mut SnapshotReader<'_>,
    programs: &FxHashMap<u64, Arc<Program>>,
) -> Result<AssistLaunch, SnapError> {
    let hash = r.u64()?;
    let program = programs.get(&hash).cloned().ok_or(SnapError::Invariant {
        what: "assist launch program hash not resolvable",
    })?;
    Ok(AssistLaunch {
        program,
        parent_warp: r.usize()?,
        priority: AssistPriority::load(r)?,
        live_in: Vec::<(Reg, u64)>::load(r)?,
        active_mask: r.u32()?,
        tag: r.u64()?,
    })
}

/// Encodes a hazard-memo vector: one byte per slot, `0` for no memo,
/// `tag + 1` for a memoized [`StallVerdict`].
fn save_slot_memo(memo: &[SlotMemo], w: &mut SnapshotWriter) {
    w.usize(memo.len());
    for m in memo {
        w.u8(match m {
            SlotMemo::Unknown => 0,
            SlotMemo::Hazard(v) => verdict_tag(*v) + 1,
            SlotMemo::MemBlocked { shared: false } => 7,
            SlotMemo::MemBlocked { shared: true } => 8,
            SlotMemo::SfuBlocked => 9,
            SlotMemo::Done => 10,
            SlotMemo::Barrier => 11,
        });
    }
}

/// Decodes a consideration-memo vector of exactly `expected` slots.
fn load_slot_memo(r: &mut SnapshotReader<'_>, expected: usize) -> Result<Vec<SlotMemo>, SnapError> {
    let n = r.seq_len("consideration memo", 1)?;
    if n != expected {
        return Err(SnapError::Invariant {
            what: "consideration memo slot count mismatch",
        });
    }
    let mut memo = Vec::with_capacity(n);
    for _ in 0..n {
        memo.push(match r.u8()? {
            0 => SlotMemo::Unknown,
            7 => SlotMemo::MemBlocked { shared: false },
            8 => SlotMemo::MemBlocked { shared: true },
            9 => SlotMemo::SfuBlocked,
            10 => SlotMemo::Done,
            11 => SlotMemo::Barrier,
            tag => SlotMemo::Hazard(verdict_from_tag(tag - 1)?),
        });
    }
    Ok(memo)
}

fn verdict_tag(v: StallVerdict) -> u8 {
    match v {
        StallVerdict::Barrier => 0,
        StallVerdict::HazardMem => 1,
        StallVerdict::HazardCtrl => 2,
        StallVerdict::HazardSb => 3,
        StallVerdict::MemStructural => 4,
        StallVerdict::ComputeStructural => 5,
    }
}

fn verdict_from_tag(tag: u8) -> Result<StallVerdict, SnapError> {
    Ok(match tag {
        0 => StallVerdict::Barrier,
        1 => StallVerdict::HazardMem,
        2 => StallVerdict::HazardCtrl,
        3 => StallVerdict::HazardSb,
        4 => StallVerdict::MemStructural,
        5 => StallVerdict::ComputeStructural,
        t => {
            return Err(SnapError::BadTag {
                what: "stall verdict",
                tag: t.into(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use caba_isa::{Instr, LaunchDims, Op, Program};

    fn kernel(regs: u32, block: u32, grid: u32, shared: u32) -> Kernel {
        let p = Program::new(vec![Instr::new(Op::Exit)]);
        Kernel::new("k", p, LaunchDims::new(grid, block))
            .with_regs_per_thread(regs)
            .with_shared_bytes(shared)
    }

    #[test]
    fn launch_respects_block_limit() {
        let cfg = GpuConfig::isca2015();
        let mut sm = Sm::new(0, cfg);
        let k = kernel(8, 32, 100, 0);
        let mut launched = 0;
        while sm.try_launch_block(launched, &k, 0) {
            launched += 1;
        }
        assert_eq!(launched as usize, cfg.max_blocks_per_sm);
        assert_eq!(sm.resident_blocks(), cfg.max_blocks_per_sm);
        assert_eq!(sm.resident_warps(), cfg.max_blocks_per_sm);
    }

    #[test]
    fn launch_respects_warp_slots() {
        let cfg = GpuConfig::isca2015();
        let mut sm = Sm::new(0, cfg);
        // 512-thread blocks = 16 warps: only 3 fit in 48 slots.
        let k = kernel(8, 512, 100, 0);
        let mut launched = 0;
        while sm.try_launch_block(launched, &k, 0) {
            launched += 1;
        }
        assert_eq!(launched, 3);
        assert_eq!(sm.resident_warps(), 48);
    }

    #[test]
    fn launch_respects_register_budget() {
        let cfg = GpuConfig::isca2015();
        let mut sm = Sm::new(0, cfg);
        // 63 regs x 256 threads = 16128/block: two fit in 32768.
        let k = kernel(63, 256, 100, 0);
        let mut launched = 0;
        while sm.try_launch_block(launched, &k, 0) {
            launched += 1;
        }
        assert_eq!(launched, 2);
        // Assist-warp extra registers shrink occupancy further (§3.2.2).
        let mut sm2 = Sm::new(1, cfg);
        let mut launched2 = 0;
        while sm2.try_launch_block(launched2, &k, 64) {
            launched2 += 1;
        }
        assert!(launched2 < launched);
    }

    #[test]
    fn launch_respects_shared_memory() {
        let cfg = GpuConfig::isca2015();
        let mut sm = Sm::new(0, cfg);
        let k = kernel(8, 64, 100, 16 * 1024);
        let mut launched = 0;
        while sm.try_launch_block(launched, &k, 0) {
            launched += 1;
        }
        assert_eq!(launched, 2, "32 KB shared / 16 KB per block");
    }

    #[test]
    fn fresh_sm_is_quiesced_and_empty() {
        let sm = Sm::new(3, GpuConfig::small());
        assert!(sm.quiesced());
        assert_eq!(sm.id(), 3);
        assert_eq!(sm.resident_warps(), 0);
        assert_eq!(sm.app_instructions(), 0);
        assert!(sm.breakdown().total() == 0);
        assert!(sm.staging_base() >= STAGING_BASE);
        assert!(format!("{sm:?}").contains("Sm"));
    }

    /// Pins the stall-verdict tiebreak (see [`fold_verdict`]): the first
    /// blocked candidate in scheduler priority order wins within a tier,
    /// and only strictly stronger evidence (structural > hazard > barrier)
    /// replaces an earlier verdict. If this rule drifts from the order
    /// `schedule` offers candidates in, Fig. 1 buckets are misattributed.
    #[test]
    fn verdict_fold_first_blocked_candidate_wins_within_tier() {
        use StallVerdict::*;
        // Empty verdicts are claimed by whatever comes first.
        for v in [Barrier, HazardMem, HazardCtrl, HazardSb, MemStructural] {
            assert_eq!(fold_verdict(None, v), Some(v));
        }
        // Within a tier the earlier (higher-priority) candidate wins.
        assert_eq!(fold_verdict(Some(HazardMem), HazardSb), Some(HazardMem));
        assert_eq!(fold_verdict(Some(HazardSb), HazardMem), Some(HazardSb));
        assert_eq!(fold_verdict(Some(HazardCtrl), HazardSb), Some(HazardCtrl));
        assert_eq!(
            fold_verdict(Some(MemStructural), ComputeStructural),
            Some(MemStructural)
        );
        assert_eq!(
            fold_verdict(Some(ComputeStructural), MemStructural),
            Some(ComputeStructural)
        );
        // A strictly stronger tier upgrades the verdict...
        assert_eq!(fold_verdict(Some(Barrier), HazardSb), Some(HazardSb));
        assert_eq!(
            fold_verdict(Some(HazardMem), MemStructural),
            Some(MemStructural)
        );
        assert_eq!(
            fold_verdict(Some(Barrier), ComputeStructural),
            Some(ComputeStructural)
        );
        // ...and a weaker one never downgrades it.
        assert_eq!(
            fold_verdict(Some(MemStructural), HazardMem),
            Some(MemStructural)
        );
        assert_eq!(fold_verdict(Some(HazardSb), Barrier), Some(HazardSb));
    }

    #[test]
    fn verdict_buckets_match_fig1_taxonomy() {
        use StallVerdict::*;
        assert_eq!(Barrier.bucket(), StallKind::Synchronization);
        assert_eq!(HazardMem.bucket(), StallKind::MemoryData);
        assert_eq!(MemStructural.bucket(), StallKind::MemoryData);
        assert_eq!(HazardSb.bucket(), StallKind::ScoreboardPipeline);
        assert_eq!(ComputeStructural.bucket(), StallKind::ScoreboardPipeline);
        assert_eq!(HazardCtrl.bucket(), StallKind::ControlReconvergence);
    }

    #[test]
    fn idle_tick_matches_a_real_idle_cycle() {
        let cfg = GpuConfig::small();
        let mut sm = Sm::new(0, cfg);
        sm.idle_tick();
        assert_eq!(
            sm.breakdown().count(StallKind::Idle),
            cfg.schedulers_per_sm as u64
        );
        assert_eq!(sm.breakdown().total(), cfg.schedulers_per_sm as u64);
    }

    #[test]
    fn partial_warp_gets_partial_mask() {
        let cfg = GpuConfig::isca2015();
        let mut sm = Sm::new(0, cfg);
        // 40-thread block: warp 0 full, warp 1 has 8 lanes.
        let k = kernel(8, 40, 1, 0);
        assert!(sm.try_launch_block(0, &k, 0));
        assert_eq!(sm.resident_warps(), 2);
        let w1 = sm.warps[1].as_ref().expect("second warp resident");
        assert_eq!(w1.warp.active_mask().count_ones(), 8);
    }
}
