//! Warp contexts: registers, predicates, the SIMT reconvergence stack, and
//! the per-warp scoreboard.

use caba_isa::{Instr, Pred, Reg, NUM_PREGS, WARP_SIZE};
use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};

/// Full active mask (all 32 lanes).
pub const FULL_MASK: u32 = u32::MAX;

/// One SIMT stack entry: an execution path and where it reconverges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimtEntry {
    /// Program counter of this path.
    pub pc: usize,
    /// Lanes executing this path.
    pub mask: u32,
    /// PC at which this path merges into the entry below.
    pub reconv: usize,
}

/// A warp context: 32 threads executing in lock-step.
///
/// Both application warps and assist warps use this structure — the paper's
/// assist warps "share the same context as the regular warp" (§1); here the
/// shared context is modelled by allocating the assist warp's registers out
/// of the same SM register budget (accounted in
/// [`crate::occupancy`]) while keeping the storage separate.
#[derive(Debug, Clone)]
pub struct Warp {
    simt: Vec<SimtEntry>,
    regs: Vec<[u64; WARP_SIZE]>,
    preds: [u32; NUM_PREGS],
    pending: Vec<u64>,
    /// Outstanding global-memory line fills for in-flight loads.
    pub outstanding_loads: u32,
    /// True while waiting at a block barrier.
    pub at_barrier: bool,
    /// True when every lane has exited.
    pub done: bool,
    /// Cycle of the last successful issue (GTO greedy bookkeeping).
    pub last_issue: u64,
    /// Instructions issued by this warp.
    pub issued: u64,
}

impl Warp {
    /// Creates a warp with `nregs` registers, starting at PC 0 with lanes
    /// `mask` active.
    pub fn new(nregs: usize, mask: u32) -> Self {
        Warp {
            simt: vec![SimtEntry {
                pc: 0,
                mask,
                reconv: usize::MAX,
            }],
            regs: vec![[0u64; WARP_SIZE]; nregs],
            preds: [0u32; NUM_PREGS],
            pending: vec![0u64; nregs.div_ceil(64)],
            outstanding_loads: 0,
            at_barrier: false,
            done: false,
            last_issue: 0,
            issued: 0,
        }
    }

    /// Current program counter (top of the SIMT stack).
    pub fn pc(&self) -> usize {
        self.simt.last().map_or(usize::MAX, |e| e.pc)
    }

    /// Current active mask.
    pub fn active_mask(&self) -> u32 {
        self.simt.last().map_or(0, |e| e.mask)
    }

    /// Depth of the SIMT stack.
    pub fn simt_depth(&self) -> usize {
        self.simt.len()
    }

    /// Register value for `reg` in `lane`.
    ///
    /// # Panics
    ///
    /// Panics if the register or lane is out of range.
    pub fn reg(&self, reg: Reg, lane: usize) -> u64 {
        self.regs[reg.0 as usize][lane]
    }

    /// Sets `reg` in `lane`.
    pub fn set_reg(&mut self, reg: Reg, lane: usize, v: u64) {
        self.regs[reg.0 as usize][lane] = v;
    }

    /// Predicate `p` in `lane`.
    pub fn pred(&self, p: Pred, lane: usize) -> bool {
        self.preds[p.0 as usize] >> lane & 1 == 1
    }

    /// Sets predicate `p` in `lane`.
    pub fn set_pred(&mut self, p: Pred, lane: usize, v: bool) {
        if v {
            self.preds[p.0 as usize] |= 1 << lane;
        } else {
            self.preds[p.0 as usize] &= !(1 << lane);
        }
    }

    /// Bitmask of lanes (within `mask`) where `pred == polarity`.
    pub fn pred_mask(&self, p: Pred, polarity: bool, mask: u32) -> u32 {
        let bits = self.preds[p.0 as usize];
        let sel = if polarity { bits } else { !bits };
        sel & mask
    }

    /// Lanes that would execute `instr` right now (active ∧ guard).
    pub fn exec_mask(&self, instr: &Instr) -> u32 {
        let active = self.active_mask();
        match instr.guard {
            None => active,
            Some((p, pol)) => self.pred_mask(p, pol, active),
        }
    }

    // ----- scoreboard -------------------------------------------------------

    /// Marks `reg` as pending (a long-latency producer is in flight).
    pub fn mark_pending(&mut self, reg: Reg) {
        self.pending[reg.0 as usize / 64] |= 1 << (reg.0 % 64);
    }

    /// Clears the pending bit for `reg`.
    pub fn clear_pending(&mut self, reg: Reg) {
        self.pending[reg.0 as usize / 64] &= !(1 << (reg.0 % 64));
    }

    /// True if `reg` has a producer in flight.
    pub fn is_pending(&self, reg: Reg) -> bool {
        self.pending[reg.0 as usize / 64] >> (reg.0 % 64) & 1 == 1
    }

    /// True when `instr` cannot issue because a source or destination
    /// register awaits an in-flight producer (a data-dependence stall).
    pub fn hazard(&self, instr: &Instr) -> bool {
        if let Some(d) = instr.dst_reg() {
            if self.is_pending(d) {
                return true;
            }
        }
        instr
            .src_regs_fixed()
            .into_iter()
            .flatten()
            .any(|r| self.is_pending(r))
    }

    /// True when any register is pending.
    pub fn any_pending(&self) -> bool {
        self.pending.iter().any(|&w| w != 0)
    }

    /// Registers whose pending bit is set (used by the scoreboard audit:
    /// every pending register must have a producer in flight).
    pub fn pending_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.pending.iter().enumerate().flat_map(|(word, &bits)| {
            (0..64u16)
                .filter(move |b| bits >> b & 1 == 1)
                .map(move |b| Reg(word as u16 * 64 + b))
        })
    }

    // ----- control flow -----------------------------------------------------

    /// Pops merged paths: entries whose PC reached their reconvergence point.
    fn maybe_merge(&mut self) {
        while self.simt.len() > 1 {
            let top = *self.simt.last().expect("nonempty");
            if top.pc == top.reconv {
                self.simt.pop();
            } else {
                break;
            }
        }
    }

    /// Moves to the next sequential instruction.
    pub fn advance_pc(&mut self) {
        if let Some(top) = self.simt.last_mut() {
            top.pc += 1;
        }
        self.maybe_merge();
    }

    /// Applies a (possibly divergent) branch. `taken` must be a subset of
    /// the active mask; `next` is the fall-through PC.
    ///
    /// # Panics
    ///
    /// Panics if `taken` contains inactive lanes.
    pub fn take_branch(&mut self, taken: u32, target: usize, next: usize, reconv: usize) {
        let active = self.active_mask();
        assert_eq!(taken & !active, 0, "taken lanes must be active");
        if taken == 0 {
            if let Some(top) = self.simt.last_mut() {
                top.pc = next;
            }
        } else if taken == active {
            if let Some(top) = self.simt.last_mut() {
                top.pc = target;
            }
        } else {
            // Divergence: the current entry becomes the reconvergence
            // continuation; the two paths are pushed above it.
            let old_reconv = self.simt.last().expect("nonempty").reconv;
            if let Some(top) = self.simt.last_mut() {
                top.pc = reconv;
                top.reconv = old_reconv;
            }
            self.simt.push(SimtEntry {
                pc: next,
                mask: active & !taken,
                reconv,
            });
            self.simt.push(SimtEntry {
                pc: target,
                mask: taken,
                reconv,
            });
        }
        self.maybe_merge();
    }

    /// Retires `lanes` from the warp (Exit). When no lanes remain, the warp
    /// is done.
    pub fn exit_lanes(&mut self, lanes: u32) {
        for e in &mut self.simt {
            e.mask &= !lanes;
        }
        self.simt.retain(|e| e.mask != 0);
        if self.simt.is_empty() {
            self.done = true;
        } else {
            // The top entry may now be an empty merged path.
            self.maybe_merge();
        }
    }
}

impl SnapshotState for SimtEntry {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.pc);
        w.u32(self.mask);
        w.usize(self.reconv);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(SimtEntry {
            pc: r.usize()?,
            mask: r.u32()?,
            reconv: r.usize()?,
        })
    }
}

impl SnapshotState for Warp {
    fn save(&self, w: &mut SnapshotWriter) {
        self.simt.save(w);
        self.regs.save(w);
        self.preds.save(w);
        self.pending.save(w);
        w.u32(self.outstanding_loads);
        w.bool(self.at_barrier);
        w.bool(self.done);
        w.u64(self.last_issue);
        w.u64(self.issued);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(Warp {
            simt: Vec::<SimtEntry>::load(r)?,
            regs: Vec::<[u64; WARP_SIZE]>::load(r)?,
            preds: <[u32; NUM_PREGS]>::load(r)?,
            pending: Vec::<u64>::load(r)?,
            outstanding_loads: r.u32()?,
            at_barrier: r.bool()?,
            done: r.bool()?,
            last_issue: r.u64()?,
            issued: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caba_isa::{AluOp, Op, Src};

    fn add_instr(dst: u16, a: u16) -> Instr {
        Instr::new(Op::Alu {
            op: AluOp::Add,
            dst: Reg(dst),
            a: Src::Reg(Reg(a)),
            b: Src::Imm(1),
        })
    }

    #[test]
    fn registers_and_predicates() {
        let mut w = Warp::new(8, FULL_MASK);
        w.set_reg(Reg(3), 7, 42);
        assert_eq!(w.reg(Reg(3), 7), 42);
        assert_eq!(w.reg(Reg(3), 6), 0);
        w.set_pred(Pred(1), 5, true);
        assert!(w.pred(Pred(1), 5));
        w.set_pred(Pred(1), 5, false);
        assert!(!w.pred(Pred(1), 5));
    }

    #[test]
    fn pred_mask_polarity() {
        let mut w = Warp::new(1, FULL_MASK);
        w.set_pred(Pred(0), 0, true);
        w.set_pred(Pred(0), 2, true);
        assert_eq!(w.pred_mask(Pred(0), true, FULL_MASK), 0b101);
        assert_eq!(w.pred_mask(Pred(0), false, 0b111), 0b010);
    }

    #[test]
    fn scoreboard_hazards() {
        let mut w = Warp::new(70, FULL_MASK);
        assert!(!w.hazard(&add_instr(0, 1)));
        w.mark_pending(Reg(1));
        assert!(w.hazard(&add_instr(0, 1))); // source pending
        assert!(w.hazard(&add_instr(1, 2))); // dest pending (WAW)
        assert!(!w.hazard(&add_instr(2, 3)));
        assert!(w.is_pending(Reg(1)));
        assert!(w.any_pending());
        w.clear_pending(Reg(1));
        assert!(!w.any_pending());
        // Registers beyond 64 use the second pending word.
        w.mark_pending(Reg(65));
        assert!(w.is_pending(Reg(65)));
        assert!(!w.is_pending(Reg(1)));
    }

    #[test]
    fn uniform_branches_do_not_grow_stack() {
        let mut w = Warp::new(1, FULL_MASK);
        w.take_branch(FULL_MASK, 10, 1, 20);
        assert_eq!(w.pc(), 10);
        assert_eq!(w.simt_depth(), 1);
        w.take_branch(0, 3, 11, 20);
        assert_eq!(w.pc(), 11);
        assert_eq!(w.simt_depth(), 1);
    }

    #[test]
    fn divergence_and_reconvergence() {
        let mut w = Warp::new(1, 0b1111);
        // Branch at pc 0: lanes 0-1 take to 5, lanes 2-3 fall to 1,
        // reconverge at 8.
        w.take_branch(0b0011, 5, 1, 8);
        assert_eq!(w.simt_depth(), 3);
        // Taken path first.
        assert_eq!(w.pc(), 5);
        assert_eq!(w.active_mask(), 0b0011);
        // Taken path runs 5,6,7 then merges at 8.
        w.advance_pc();
        w.advance_pc();
        w.advance_pc(); // pc==8 == reconv -> pop
        assert_eq!(w.pc(), 1);
        assert_eq!(w.active_mask(), 0b1100);
        // Fall-through path runs 1..8 then merges.
        for _ in 1..8 {
            w.advance_pc();
        }
        assert_eq!(w.pc(), 8);
        assert_eq!(w.active_mask(), 0b1111);
        assert_eq!(w.simt_depth(), 1);
    }

    #[test]
    fn nested_divergence() {
        let mut w = Warp::new(1, 0b1111);
        w.take_branch(0b0011, 10, 1, 20);
        assert_eq!(w.pc(), 10);
        // Nested divergence on the taken path.
        w.take_branch(0b0001, 15, 11, 18);
        assert_eq!(w.pc(), 15);
        assert_eq!(w.active_mask(), 0b0001);
        assert_eq!(w.simt_depth(), 5);
        // Inner taken path 15..18.
        w.advance_pc();
        w.advance_pc();
        w.advance_pc();
        assert_eq!(w.pc(), 11);
        assert_eq!(w.active_mask(), 0b0010);
        for _ in 11..18 {
            w.advance_pc();
        }
        // Inner merged: back at 18 with 0b0011.
        assert_eq!(w.pc(), 18);
        assert_eq!(w.active_mask(), 0b0011);
        w.advance_pc();
        w.advance_pc(); // 20 == outer reconv
        assert_eq!(w.pc(), 1);
        assert_eq!(w.active_mask(), 0b1100);
    }

    #[test]
    #[should_panic(expected = "taken lanes must be active")]
    fn inactive_taken_lanes_panic() {
        let mut w = Warp::new(1, 0b0001);
        w.take_branch(0b0010, 1, 2, 3);
    }

    #[test]
    fn exit_lanes_completes_warp() {
        let mut w = Warp::new(1, 0b1111);
        w.exit_lanes(0b0011);
        assert!(!w.done);
        assert_eq!(w.active_mask(), 0b1100);
        w.exit_lanes(0b1100);
        assert!(w.done);
        assert_eq!(w.active_mask(), 0);
        assert_eq!(w.pc(), usize::MAX);
    }

    #[test]
    fn partial_exit_within_divergence() {
        let mut w = Warp::new(1, 0b1111);
        w.take_branch(0b0011, 5, 1, 8);
        // Taken lanes exit inside their path.
        w.exit_lanes(0b0011);
        assert!(!w.done);
        // Stack unwinds to the fall-through path.
        assert_eq!(w.pc(), 1);
        assert_eq!(w.active_mask(), 0b1100);
    }
}
