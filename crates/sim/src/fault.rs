//! Deterministic, seeded fault injection for the simulation integrity layer.
//!
//! A simulator that silently loses a request or decompresses a line wrong
//! produces plausible-looking but incorrect results. To prove the invariant
//! audits (see [`crate::integrity`]) actually catch such corruption, this
//! module injects three fault classes at configurable rates:
//!
//! * **dropped crossbar packets** — a request or response vanishes at a
//!   crossbar port;
//! * **delayed DRAM responses** — a DRAM request is held for a configurable
//!   number of cycles before entering the channel;
//! * **corrupted compressed lines** — payload/metadata bits of a compressed
//!   line are flipped.
//!
//! Injection is deterministic: every component derives its own
//! [`Rng64`] stream from the single [`FaultConfig::seed`], so the same
//! seed produces bit-identical fault schedules regardless of wall-clock or
//! host, and distinct components never share a stream.
//!
//! [`FaultMode`] picks what the simulated hardware does about a fault:
//! `Recover` models the recovery path (retransmit, wait, detect-and-refetch)
//! so runs still complete with correct results and [`crate::RunStats`]
//! counts every event; `Silent` models broken hardware that genuinely loses
//! or corrupts state, which the audits must then surface as structured
//! errors naming the faulting component.

use caba_compress::CompressedLine;
use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
use caba_stats::Rng64;

/// What the simulated machine does when an injected fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Model the recovery hardware: dropped packets are retransmitted,
    /// delayed DRAM requests simply take longer, corrupted fills are
    /// detected by round-trip verification and refetched. Runs complete
    /// correctly; `RunStats` counts every event.
    #[default]
    Recover,
    /// Model broken hardware: faults genuinely lose or corrupt state. The
    /// structural invariant audits must catch each class and fail the run
    /// with a violation naming the component.
    Silent,
}

/// Fault-injection configuration, carried inside
/// [`GpuConfig`](crate::GpuConfig). All rates are per-opportunity
/// probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master switch; when false no fault path is ever consulted.
    pub enabled: bool,
    /// Seed for every derived fault stream.
    pub seed: u64,
    /// Recovery vs. silent-corruption behavior.
    pub mode: FaultMode,
    /// Probability that a packet entering a crossbar port is dropped.
    pub drop_flit_rate: f64,
    /// Probability that a DRAM request is held before entering the channel.
    pub dram_delay_rate: f64,
    /// Cycles a delayed DRAM request is held. Keep well below the watchdog
    /// window or a delay burst can masquerade as a hang.
    pub dram_delay_cycles: u64,
    /// Probability that a compressed line arriving at an SM is corrupted.
    pub corrupt_line_rate: f64,
}

impl FaultConfig {
    /// No fault injection (the default for every stock configuration).
    pub fn disabled() -> Self {
        FaultConfig {
            enabled: false,
            seed: 0,
            mode: FaultMode::Recover,
            drop_flit_rate: 0.0,
            dram_delay_rate: 0.0,
            dram_delay_cycles: 200,
            corrupt_line_rate: 0.0,
        }
    }

    /// All three fault classes at `rate`, with the recovery paths active.
    pub fn recover(seed: u64, rate: f64) -> Self {
        FaultConfig {
            enabled: true,
            seed,
            mode: FaultMode::Recover,
            drop_flit_rate: rate,
            dram_delay_rate: rate,
            dram_delay_cycles: 200,
            corrupt_line_rate: rate,
        }
    }

    /// All three fault classes at `rate`, silently corrupting state so the
    /// audits must catch them.
    pub fn silent(seed: u64, rate: f64) -> Self {
        FaultConfig {
            mode: FaultMode::Silent,
            ..Self::recover(seed, rate)
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Stream ids keeping per-component fault randomness disjoint.
pub mod stream {
    /// The GPU-level crossbar injector.
    pub const CROSSBAR: u64 = 0x10;
    /// Per-partition DRAM injectors start here (`+ partition id`).
    pub const PARTITION_BASE: u64 = 0x100;
    /// Per-SM fill injectors start here (`+ SM id`).
    pub const SM_BASE: u64 = 0x1000;
}

/// A per-component deterministic fault source.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: Rng64,
}

impl FaultInjector {
    /// Builds the injector for stream `stream` of `cfg` (see [`stream`]).
    pub fn for_stream(cfg: FaultConfig, stream: u64) -> Self {
        FaultInjector {
            cfg,
            rng: Rng64::for_stream(cfg.seed, stream),
        }
    }

    /// True when injection is enabled at all.
    pub fn active(&self) -> bool {
        self.cfg.enabled
    }

    /// The configured fault mode.
    pub fn mode(&self) -> FaultMode {
        self.cfg.mode
    }

    /// Should the packet about to enter a crossbar port be dropped?
    pub fn drop_packet(&mut self) -> bool {
        self.cfg.enabled && self.rng.chance(self.cfg.drop_flit_rate)
    }

    /// Cycles to hold the DRAM request about to be pushed, if faulted.
    pub fn delay_dram(&mut self) -> Option<u64> {
        (self.cfg.enabled && self.rng.chance(self.cfg.dram_delay_rate))
            .then_some(self.cfg.dram_delay_cycles)
    }

    /// Should the compressed fill arriving now be corrupted?
    pub fn corrupt_fill(&mut self) -> bool {
        self.cfg.enabled && self.rng.chance(self.cfg.corrupt_line_rate)
    }

    /// Serializes the injector's RNG position (the config is part of
    /// [`GpuConfig`](crate::GpuConfig) and is re-supplied at restore).
    pub fn snap_save(&self, w: &mut SnapshotWriter) {
        self.rng.save(w);
    }

    /// Restores the RNG position in place, so the fault schedule continues
    /// exactly where the snapshot left off.
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes.
    pub fn snap_load(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapError> {
        self.rng = Rng64::load(r)?;
        Ok(())
    }

    /// Flips payload bits of `line` until it no longer round-trips to
    /// `truth`, returning true on success.
    ///
    /// Only payload (and, for empty payloads, encoding) bits are touched —
    /// never the algorithm tag — so decompression of the corrupted line can
    /// fail gracefully but cannot crash. Some payload bits are dead padding
    /// (FPC/C-Pack word alignment), so single flips are retried on
    /// successive bits until the round trip actually breaks.
    pub fn corrupt_line(&mut self, line: &mut CompressedLine, truth: &[u8]) -> bool {
        if line.payload.is_empty() {
            // Zero-payload encodings (e.g. BDI all-zero lines) have no data
            // bits; corrupt the out-of-band encoding id instead.
            line.encoding ^= 0x80;
            return !line.round_trips_to(truth);
        }
        let nbits = line.payload.len() * 8;
        let start = self.rng.range_u64(nbits as u64) as usize;
        for i in 0..nbits {
            let bit = (start + i) % nbits;
            line.payload[bit / 8] ^= 1 << (bit % 8);
            if !line.round_trips_to(truth) {
                return true;
            }
        }
        false
    }
}

/// Dedicated stream id for [`corrupt_snapshot`] (disjoint from the
/// component streams in [`stream`]).
const SNAPSHOT_STREAM: u64 = 0x5A5A;

/// Flips one deterministically chosen bit of a serialized snapshot,
/// modeling storage/transfer corruption of a checkpoint file. Returns the
/// `(byte, bit)` flipped, or `None` when the buffer is empty.
///
/// The position derives from `seed` alone, so a given corruption is
/// reproducible — the integrity tests use this to prove that *any* flipped
/// bit makes [`Gpu::restore`](crate::Gpu::restore) reject the snapshot with
/// a checksum error instead of loading corrupt machine state.
pub fn corrupt_snapshot(bytes: &mut [u8], seed: u64) -> Option<(usize, u8)> {
    if bytes.is_empty() {
        return None;
    }
    let mut rng = Rng64::for_stream(seed, SNAPSHOT_STREAM);
    let bit_index = rng.range_u64(bytes.len() as u64 * 8);
    let byte = (bit_index / 8) as usize;
    let bit = (bit_index % 8) as u8;
    bytes[byte] ^= 1 << bit;
    Some((byte, bit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use caba_compress::Algorithm;

    fn injector(cfg: FaultConfig) -> FaultInjector {
        FaultInjector::for_stream(cfg, stream::CROSSBAR)
    }

    #[test]
    fn disabled_injector_never_fires() {
        let mut inj = injector(FaultConfig::disabled());
        for _ in 0..1000 {
            assert!(!inj.drop_packet());
            assert!(inj.delay_dram().is_none());
            assert!(!inj.corrupt_fill());
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cfg = FaultConfig::recover(42, 0.25);
        let mut a = injector(cfg);
        let mut b = injector(cfg);
        let sa: Vec<bool> = (0..500).map(|_| a.drop_packet()).collect();
        let sb: Vec<bool> = (0..500).map(|_| b.drop_packet()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&d| d), "25% rate must fire in 500 draws");
        assert!(!sa.iter().all(|&d| d));

        // A different seed gives a different schedule.
        let mut c = injector(FaultConfig::recover(43, 0.25));
        let sc: Vec<bool> = (0..500).map(|_| c.drop_packet()).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn streams_are_independent() {
        let cfg = FaultConfig::recover(7, 0.5);
        let mut a = FaultInjector::for_stream(cfg, stream::SM_BASE);
        let mut b = FaultInjector::for_stream(cfg, stream::SM_BASE + 1);
        let sa: Vec<bool> = (0..200).map(|_| a.corrupt_fill()).collect();
        let sb: Vec<bool> = (0..200).map(|_| b.corrupt_fill()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn corrupt_line_breaks_round_trip() {
        // A BDI-compressible line with a real payload.
        let mut line_bytes = Vec::new();
        for i in 0..32u32 {
            line_bytes.extend_from_slice(&(0x1000 + i).to_le_bytes());
        }
        let c = Algorithm::Bdi.compressor().compress(&line_bytes).unwrap();
        let mut inj = injector(FaultConfig::silent(1, 1.0));
        for trial in 0..32 {
            let mut victim = c.clone();
            assert!(
                inj.corrupt_line(&mut victim, &line_bytes),
                "trial {trial} failed to corrupt"
            );
            assert!(!victim.round_trips_to(&line_bytes));
        }
    }

    #[test]
    fn corrupt_snapshot_is_deterministic_and_flips_one_bit() {
        let original: Vec<u8> = (0..251u32).map(|i| (i * 7) as u8).collect();
        let mut a = original.clone();
        let mut b = original.clone();
        let pa = corrupt_snapshot(&mut a, 99).expect("non-empty");
        let pb = corrupt_snapshot(&mut b, 99).expect("non-empty");
        assert_eq!(pa, pb, "same seed, same flipped bit");
        assert_eq!(a, b);
        let diffs: Vec<usize> = (0..original.len())
            .filter(|&i| a[i] != original[i])
            .collect();
        assert_eq!(diffs, vec![pa.0], "exactly one byte differs");
        assert_eq!(
            a[pa.0] ^ original[pa.0],
            1 << pa.1,
            "exactly one bit flipped"
        );
        // A different seed (eventually) picks a different bit.
        let mut c = original.clone();
        let pc = corrupt_snapshot(&mut c, 100).expect("non-empty");
        assert_ne!(pa, pc);
        assert_eq!(corrupt_snapshot(&mut [], 1), None);
    }

    #[test]
    fn injector_snapshot_resumes_rng_stream() {
        let cfg = FaultConfig::recover(42, 0.25);
        let mut live = injector(cfg);
        for _ in 0..123 {
            live.drop_packet();
        }
        let mut w = SnapshotWriter::new();
        live.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = injector(cfg);
        let mut r = SnapshotReader::new(&bytes);
        restored.snap_load(&mut r).expect("round trip");
        r.finish().expect("no trailing bytes");
        let a: Vec<bool> = (0..200).map(|_| live.drop_packet()).collect();
        let b: Vec<bool> = (0..200).map(|_| restored.drop_packet()).collect();
        assert_eq!(a, b, "restored stream must continue identically");
    }

    #[test]
    fn corrupt_line_handles_empty_payload() {
        // An all-zero line compresses to a zero-byte payload under BDI.
        let zeros = vec![0u8; 128];
        let c = Algorithm::Bdi.compressor().compress(&zeros).unwrap();
        assert!(c.payload.is_empty(), "zero line should have empty payload");
        let mut inj = injector(FaultConfig::silent(2, 1.0));
        let mut victim = c.clone();
        assert!(inj.corrupt_line(&mut victim, &zeros));
        assert!(!victim.round_trips_to(&zeros));
    }
}
