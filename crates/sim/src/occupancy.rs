//! Static occupancy analysis — reproduces Figure 2 (fraction of statically
//! unallocated registers) and the CABA register-availability rule of §3.2.2.

use crate::config::GpuConfig;
use caba_isa::Kernel;

/// Static occupancy of one kernel on one SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyInfo {
    /// Resident blocks per SM.
    pub blocks: u32,
    /// Resident warps per SM.
    pub warps: u32,
    /// Registers allocated to thread blocks.
    pub allocated_regs: u32,
    /// Registers left unallocated (available for assist warps).
    pub unallocated_regs: u32,
    /// Which resource bounds the occupancy.
    pub limiter: OccupancyLimiter,
}

/// The resource limiting occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimiter {
    /// The per-SM thread/warp limit (1536 threads).
    Threads,
    /// The per-SM block limit (8 blocks).
    Blocks,
    /// The register file.
    Registers,
    /// Shared memory.
    SharedMemory,
    /// The grid has fewer blocks than one SM could host.
    Grid,
}

impl OccupancyInfo {
    /// Fraction of the register file left unallocated — the Figure 2 metric
    /// (paper average: 24%).
    pub fn unallocated_fraction(&self, cfg: &GpuConfig) -> f64 {
        self.unallocated_regs as f64 / cfg.regfile_per_sm as f64
    }
}

/// Computes the static occupancy of `kernel` under `cfg`, with
/// `extra_regs_per_thread` charged for enabled assist-warp routines
/// (§3.2.2: "we add its register requirement to the per-block register
/// requirement").
pub fn occupancy(kernel: &Kernel, cfg: &GpuConfig, extra_regs_per_thread: u32) -> OccupancyInfo {
    let dims = kernel.dims();
    let threads_per_block = dims.block_dim;
    let warps_per_block = dims.warps_per_block();
    let regs_per_block = (kernel.regs_per_thread() + extra_regs_per_thread) * threads_per_block;
    let shared_per_block = kernel.shared_bytes_per_block().max(1);

    let by_threads = cfg.warps_per_sm as u32 / warps_per_block.max(1);
    let by_blocks = cfg.max_blocks_per_sm as u32;
    let by_regs = cfg
        .regfile_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    let by_shared = cfg.shared_per_sm / shared_per_block;
    let by_grid = dims.grid_dim;

    let blocks = by_threads
        .min(by_blocks)
        .min(by_regs)
        .min(by_shared)
        .min(by_grid);
    let limiter = if blocks == by_threads {
        OccupancyLimiter::Threads
    } else if blocks == by_blocks {
        OccupancyLimiter::Blocks
    } else if blocks == by_regs {
        OccupancyLimiter::Registers
    } else if blocks == by_shared {
        OccupancyLimiter::SharedMemory
    } else {
        OccupancyLimiter::Grid
    };

    let allocated = blocks * regs_per_block;
    OccupancyInfo {
        blocks,
        warps: blocks * warps_per_block,
        allocated_regs: allocated,
        unallocated_regs: cfg.regfile_per_sm.saturating_sub(allocated),
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caba_isa::{Instr, LaunchDims, Op, Program};

    fn kernel(regs: u32, block: u32, grid: u32, shared: u32) -> Kernel {
        let p = Program::new(vec![Instr::new(Op::Exit)]);
        Kernel::new("k", p, LaunchDims::new(grid, block))
            .with_regs_per_thread(regs)
            .with_shared_bytes(shared)
    }

    #[test]
    fn block_limited_kernel_leaves_registers_unallocated() {
        let cfg = GpuConfig::isca2015();
        // 8 blocks × 128 threads × 20 regs = 20480 of 32768 allocated.
        let k = kernel(20, 128, 1000, 0);
        let o = occupancy(&k, &cfg, 0);
        assert_eq!(o.blocks, 8);
        assert_eq!(o.limiter, OccupancyLimiter::Blocks);
        assert_eq!(o.allocated_regs, 20480);
        assert_eq!(o.unallocated_regs, 32768 - 20480);
        let f = o.unallocated_fraction(&cfg);
        assert!((f - (12288.0 / 32768.0)).abs() < 1e-12);
    }

    #[test]
    fn thread_limited_kernel() {
        let cfg = GpuConfig::isca2015();
        // 512-thread blocks: 16 warps each; 48/16 = 3 blocks.
        let k = kernel(10, 512, 1000, 0);
        let o = occupancy(&k, &cfg, 0);
        assert_eq!(o.blocks, 3);
        assert_eq!(o.warps, 48);
        assert_eq!(o.limiter, OccupancyLimiter::Threads);
    }

    #[test]
    fn register_limited_kernel() {
        let cfg = GpuConfig::isca2015();
        // 63 regs × 256 threads = 16128/block; 32768/16128 = 2 blocks.
        let k = kernel(63, 256, 1000, 0);
        let o = occupancy(&k, &cfg, 0);
        assert_eq!(o.blocks, 2);
        assert_eq!(o.limiter, OccupancyLimiter::Registers);
    }

    #[test]
    fn shared_memory_limited_kernel() {
        let cfg = GpuConfig::isca2015();
        let k = kernel(10, 64, 1000, 16 * 1024);
        let o = occupancy(&k, &cfg, 0);
        assert_eq!(o.blocks, 2);
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
    }

    #[test]
    fn grid_limited_kernel() {
        let cfg = GpuConfig::isca2015();
        let k = kernel(10, 64, 1, 0);
        let o = occupancy(&k, &cfg, 0);
        assert_eq!(o.blocks, 1);
        assert_eq!(o.limiter, OccupancyLimiter::Grid);
    }

    #[test]
    fn assist_registers_reduce_occupancy_when_tight() {
        let cfg = GpuConfig::isca2015();
        let k = kernel(60, 256, 1000, 0);
        let without = occupancy(&k, &cfg, 0);
        let with = occupancy(&k, &cfg, 10);
        assert!(with.blocks <= without.blocks);
        assert!(with.allocated_regs >= without.blocks * 60 * 256 / without.blocks.max(1));
    }
}
