//! A memory partition: one L2 slice, the metadata cache, and one GDDR5
//! channel (the paper's 6 MCs each pair an L2 slice with a channel).

use crate::config::GpuConfig;
use crate::fault::{stream, FaultInjector};
use crate::integrity::{Component, PartitionSnapshot, Violation};
use crate::trace::{TraceEvent, TraceEventKind};
use caba_mem::{
    AccessOutcome, Cache, DramChannel, DramRequest, MdCache, Mshr, SharedCmap, SharedMem, LINE_SIZE,
};
use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
use std::collections::VecDeque;

use crate::assist::SharedLineStore;

/// A request arriving at a partition from the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartReq {
    /// Requesting SM.
    pub sm: usize,
    /// Line base address.
    pub addr: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
}

/// A read response leaving a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartResp {
    /// Destination SM.
    pub sm: usize,
    /// Line base address.
    pub addr: u64,
    /// Interconnect flits the response occupies.
    pub flits: u32,
}

/// Answers "how big is this line as stored / as transferred", consulting
/// the stored forms and the reference compression map. Built fresh by the
/// GPU each cycle from its owned state.
pub struct SizeOracle<'a> {
    /// Functional memory (frozen during the parallel partition phase).
    pub mem: SharedMem<'a>,
    /// Reference compression map (per-partition overlay when parallel).
    pub cmap: Option<SharedCmap<'a>>,
    /// Stored-form overrides.
    pub line_store: SharedLineStore<'a>,
    /// DRAM transfers compressed?
    pub mem_compressed: bool,
    /// Interconnect/L2 compressed?
    pub icnt_compressed: bool,
}

impl SizeOracle<'_> {
    fn stored_size(&mut self, addr: u64) -> usize {
        self.line_store
            .stored_size(&self.mem, self.cmap.as_mut(), addr)
    }

    /// DRAM bursts for a line transfer.
    pub fn dram_bursts(&mut self, addr: u64) -> u32 {
        if !self.mem_compressed {
            return (LINE_SIZE / caba_compress::BURST_BYTES) as u32;
        }
        let size = self.stored_size(addr);
        caba_compress::bursts_for_size(size, LINE_SIZE) as u32
    }

    /// Flits for a read response toward the core.
    pub fn resp_flits(&mut self, addr: u64) -> u32 {
        if !self.icnt_compressed {
            return (LINE_SIZE / caba_mem::icnt::FLIT_BYTES) as u32;
        }
        let size = self.stored_size(addr);
        caba_mem::icnt::flits_for(size)
    }

    /// Resident size of a line in the L2 slice (≥ 1 byte: an all-zero line
    /// compresses to a zero-byte payload but still occupies a tag).
    pub fn l2_size(&mut self, addr: u64) -> usize {
        if self.icnt_compressed {
            self.stored_size(addr).max(1)
        } else {
            LINE_SIZE
        }
    }
}

/// One L2-slice + MD-cache + DRAM-channel partition.
#[derive(Debug)]
pub struct Partition {
    id: usize,
    cfg: GpuConfig,
    l2: Cache,
    mshr: Mshr<usize>,
    md: Option<MdCache>,
    md_required: bool,
    dram: DramChannel,
    incoming: VecDeque<PartReq>,
    pending_resp: Vec<(u64, PartResp)>,
    resp_out: VecDeque<PartResp>,
    dram_retry: VecDeque<DramRequest>,
    next_req_id: u64,
    injector: FaultInjector,
    /// Fault-delayed DRAM requests: (release cycle, request).
    delayed: Vec<(u64, DramRequest)>,
    now: u64,
    /// The next GPU cycle this partition expects to be cycled at. When the
    /// GPU skips a quiesced partition, the gap is repaid as bulk DRAM idle
    /// ticks on the next real cycle (or via [`Partition::catch_up`]), so
    /// `dram_total_cycles` — the Figure 8 utilization denominator — stays
    /// bit-identical with an unskipped run.
    next_tick: u64,
    delay_faults: u64,
    /// DRAM channel-cycles spent fetching compression metadata (each MD
    /// miss issues one extra single-burst access, §4.3.2) — the Fig. 14
    /// metadata-overhead bucket.
    md_stall_cycles: u64,
    /// Instant-event buffer, drained by the GPU tracer in partition index
    /// order. Empty unless `events_on`.
    events: Vec<TraceEvent>,
    events_on: bool,
}

/// Request-id tag marking metadata-fetch DRAM accesses.
const MD_TAG: u64 = 1 << 63;

impl Partition {
    /// Creates a partition. `with_md` enables the §4.3.2 metadata cache
    /// (compressed-memory designs).
    pub fn new(id: usize, cfg: GpuConfig, with_md: bool) -> Self {
        Partition {
            id,
            cfg,
            l2: Cache::new(cfg.l2),
            mshr: Mshr::new(cfg.mshrs),
            md: (with_md && cfg.md_cache_enabled).then(MdCache::isca2015),
            md_required: with_md,
            dram: DramChannel::new(cfg.dram),
            incoming: VecDeque::new(),
            pending_resp: Vec::new(),
            resp_out: VecDeque::new(),
            dram_retry: VecDeque::new(),
            next_req_id: 0,
            injector: FaultInjector::for_stream(cfg.fault, stream::PARTITION_BASE + id as u64),
            delayed: Vec::new(),
            now: 0,
            next_tick: 0,
            delay_faults: 0,
            md_stall_cycles: 0,
            events: Vec::new(),
            events_on: cfg.observability.trace.is_some_and(|t| t.events),
        }
    }

    /// The partition id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// True when a new request can be queued.
    pub fn can_accept(&self) -> bool {
        self.incoming.len() < 16
    }

    /// Queues an incoming request.
    pub fn push(&mut self, req: PartReq) {
        self.incoming.push_back(req);
    }

    /// Pops a ready response.
    pub fn pop_response(&mut self) -> Option<PartResp> {
        self.resp_out.pop_front()
    }

    /// Requeues a response that could not enter the interconnect
    /// (back-pressure).
    pub fn push_response_front(&mut self, resp: PartResp) {
        self.resp_out.push_front(resp);
    }

    /// True when nothing is pending anywhere in the partition.
    pub fn quiesced(&self) -> bool {
        self.incoming.is_empty()
            && self.pending_resp.is_empty()
            && self.resp_out.is_empty()
            && self.dram_retry.is_empty()
            && self.delayed.is_empty()
            && self.mshr.outstanding() == 0
            && self.dram.idle()
    }

    fn push_dram(&mut self, req: DramRequest) {
        if let Some(hold) = self.injector.delay_dram() {
            // Fault injection: hold the request before it reaches the
            // channel, modeling a delayed DRAM response. Recoverable by
            // construction — the request is only late, never lost.
            self.delay_faults += 1;
            if self.events_on {
                self.events.push(TraceEvent {
                    cycle: self.now,
                    kind: TraceEventKind::DramDelay { partition: self.id },
                });
            }
            self.delayed.push((self.now + hold, req));
            return;
        }
        if let Err(r) = self.dram.push(req) {
            self.dram_retry.push_back(r);
        }
    }

    fn md_lookup(&mut self, addr: u64) {
        let miss = match self.md.as_mut() {
            Some(md) => !md.lookup(addr),
            // No MD cache: every access to compressed memory pays the
            // extra metadata fetch (the naive design §4.3.2 improves on).
            None => self.md_required,
        };
        if miss {
            // One extra DRAM access to fetch the metadata block (§4.3.2).
            self.md_stall_cycles += self.cfg.dram.burst_cycles;
            let id = MD_TAG | self.next_req_id;
            self.next_req_id += 1;
            self.push_dram(DramRequest {
                id,
                addr,
                bursts: 1,
                is_write: false,
            });
        }
    }

    /// Repays skipped cycles as bulk DRAM clock ticks. A partition is only
    /// skipped across cycles in which it provably does nothing — it is
    /// quiesced, or every piece of in-flight state is dated at or beyond
    /// the cycle it is next cycled at (see [`Partition::next_event`]) — and
    /// such a cycle advances nothing but the DRAM clock, so bulk-ticking is
    /// bit-identical to having cycled it every skipped cycle. Call before
    /// reading [`Partition::dram_stats`] mid-run.
    pub fn catch_up(&mut self, now: u64) {
        if now > self.next_tick {
            self.dram.tick_gap(now - self.next_tick);
            self.next_tick = now;
        }
    }

    /// The earliest GPU cycle at or after `next` — the next cycle the run
    /// loop will execute — at which cycling this partition does more than
    /// advance the DRAM clock: a fault-delay or L2-latency timer expires,
    /// a DRAM transfer completes or a queued DRAM request becomes
    /// schedulable. `None` when fully quiesced; `Some(next)` when work is
    /// actionable immediately (queues to drain, responses to hand the
    /// interconnect). The global next-event clock may skip this partition
    /// up to (exclusive of) the returned cycle and repay the span via
    /// [`Partition::catch_up`].
    pub fn next_event(&self, next: u64) -> Option<u64> {
        if self.quiesced() {
            return None;
        }
        if !self.incoming.is_empty() || !self.resp_out.is_empty() || !self.dram_retry.is_empty() {
            return Some(next);
        }
        let mut at: Option<u64> = None;
        let fold = |t: u64, at: &mut Option<u64>| {
            *at = Some(at.map_or(t, |a: u64| a.min(t)));
        };
        for &(t, _) in &self.pending_resp {
            fold(t, &mut at);
        }
        for &(t, _) in &self.delayed {
            fold(t, &mut at);
        }
        if let Some(e) = self.dram.next_event() {
            // Channel cycle `e` is executed by the partition cycle at GPU
            // cycle `e - 1` (each partition cycle runs one channel cycle,
            // one ahead of the GPU clock).
            fold(e.saturating_sub(1), &mut at);
        }
        // An MSHR entry with no visible backing timer (shouldn't happen)
        // degrades to per-cycle polling rather than an unsound skip.
        Some(at.map_or(next, |t| t.max(next)))
    }

    /// Advances the partition one cycle.
    pub fn cycle(&mut self, now: u64, oracle: &mut SizeOracle<'_>) {
        self.catch_up(now);
        self.next_tick = now + 1;
        self.now = now;

        // Release fault-delayed requests whose hold expired (into the retry
        // queue so channel back-pressure still applies; no re-delay draw).
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                let (_, req) = self.delayed.swap_remove(i);
                self.dram_retry.push_back(req);
            } else {
                i += 1;
            }
        }

        // Retry DRAM pushes rejected by a full queue.
        while let Some(r) = self.dram_retry.pop_front() {
            if let Err(r) = self.dram.push(r) {
                self.dram_retry.push_front(r);
                break;
            }
        }

        // Service one incoming request.
        if let Some(req) = self.incoming.pop_front() {
            if req.is_write {
                self.md_lookup(req.addr);
                let size = oracle.l2_size(req.addr);
                let evictions = self.l2.fill(req.addr, true, size);
                for ev in evictions {
                    if ev.dirty {
                        let bursts = oracle.dram_bursts(ev.addr);
                        let id = self.next_req_id;
                        self.next_req_id += 1;
                        self.push_dram(DramRequest {
                            id,
                            addr: ev.addr,
                            bursts,
                            is_write: true,
                        });
                    }
                }
            } else {
                match self.l2.access(req.addr, false) {
                    AccessOutcome::Hit => {
                        let flits = oracle.resp_flits(req.addr);
                        self.pending_resp.push((
                            now + self.cfg.l2_latency,
                            PartResp {
                                sm: req.sm,
                                addr: req.addr,
                                flits,
                            },
                        ));
                    }
                    AccessOutcome::Miss => match self.mshr.allocate(req.addr, req.sm) {
                        Ok(true) => {
                            self.md_lookup(req.addr);
                            let bursts = oracle.dram_bursts(req.addr);
                            let id = self.next_req_id;
                            self.next_req_id += 1;
                            self.push_dram(DramRequest {
                                id,
                                addr: req.addr,
                                bursts,
                                is_write: false,
                            });
                        }
                        Ok(false) => { /* merged */ }
                        Err(sm) => {
                            // MSHRs full: retry next cycle.
                            self.incoming.push_front(PartReq {
                                sm,
                                addr: req.addr,
                                is_write: false,
                            });
                        }
                    },
                }
            }
        }

        // DRAM progress and completions.
        self.dram.cycle();
        while let Some(done) = self.dram.pop_completed() {
            if done.is_write || done.id & MD_TAG != 0 {
                continue;
            }
            let size = oracle.l2_size(done.addr);
            let evictions = self.l2.fill(done.addr, false, size);
            for ev in evictions {
                if ev.dirty {
                    let bursts = oracle.dram_bursts(ev.addr);
                    let id = self.next_req_id;
                    self.next_req_id += 1;
                    self.push_dram(DramRequest {
                        id,
                        addr: ev.addr,
                        bursts,
                        is_write: true,
                    });
                }
            }
            let flits = oracle.resp_flits(done.addr);
            for sm in self.mshr.complete(done.addr) {
                self.resp_out.push_back(PartResp {
                    sm,
                    addr: done.addr,
                    flits,
                });
            }
        }

        // Release L2-hit responses whose latency elapsed.
        let mut i = 0;
        while i < self.pending_resp.len() {
            if self.pending_resp[i].0 <= now {
                let (_, resp) = self.pending_resp.swap_remove(i);
                self.resp_out.push_back(resp);
            } else {
                i += 1;
            }
        }
    }

    /// L2 hit count.
    pub fn l2_hits(&self) -> u64 {
        self.l2.hits()
    }

    /// L2 miss count.
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses()
    }

    /// MD-cache lookup count (0 when disabled).
    pub fn md_lookups(&self) -> u64 {
        self.md.as_ref().map_or(0, |m| m.lookups())
    }

    /// MD-cache miss count.
    pub fn md_misses(&self) -> u64 {
        self.md.as_ref().map_or(0, |m| m.misses())
    }

    /// DRAM channel statistics.
    pub fn dram_stats(&self) -> caba_mem::DramStats {
        self.dram.stats()
    }

    /// DRAM requests held back by fault injection so far.
    pub fn delay_faults(&self) -> u64 {
        self.delay_faults
    }

    /// DRAM channel-cycles spent on compression-metadata fetches (one
    /// single-burst access per MD-cache miss, §4.3.2).
    pub fn md_stall_cycles(&self) -> u64 {
        self.md_stall_cycles
    }

    /// Moves this partition's buffered instant events into `out` (called by
    /// the GPU tracer in partition index order).
    pub(crate) fn drain_events(&mut self, out: &mut Vec<TraceEvent>) {
        out.append(&mut self.events);
    }

    /// True when this partition currently carries an in-flight read for
    /// `(sm, line)` — in the incoming queue, an MSHR entry with that SM as a
    /// waiter, a latency-pending L2 hit, or the response queue. Used by the
    /// request-conservation audit.
    pub fn carries_read(&self, sm: usize, line: u64) -> bool {
        self.incoming
            .iter()
            .any(|r| !r.is_write && r.sm == sm && r.addr == line)
            || self
                .mshr
                .iter()
                .any(|(addr, waiters)| addr == line && waiters.contains(&sm))
            || self
                .pending_resp
                .iter()
                .any(|(_, r)| r.sm == sm && r.addr == line)
            || self.resp_out.iter().any(|r| r.sm == sm && r.addr == line)
    }

    /// Checks this partition's occupancy-bound invariants.
    pub fn audit_into(&self, cycle: u64, out: &mut Vec<Violation>) {
        if self.mshr.outstanding() > self.mshr.capacity() {
            out.push(Violation {
                cycle,
                component: Component::Partition(self.id),
                detail: format!(
                    "L2 MSHR occupancy {} exceeds capacity {}",
                    self.mshr.outstanding(),
                    self.mshr.capacity()
                ),
            });
        }
        if self.incoming.len() > 16 {
            out.push(Violation {
                cycle,
                component: Component::Partition(self.id),
                detail: format!(
                    "incoming queue holds {} requests (bound 16)",
                    self.incoming.len()
                ),
            });
        }
    }

    // ----- binary checkpoint (see [`crate::snapshot`]) ----------------------

    /// Serializes the partition's full state (queues, L2/MD tags, MSHRs,
    /// DRAM channel, retry/delay buffers, fault RNG, counters). Geometry is
    /// config-derived and validated on load, not written.
    pub(crate) fn snap_save(&self, w: &mut SnapshotWriter) {
        self.l2.snap_save(w);
        self.mshr.snap_save(w);
        match &self.md {
            None => w.bool(false),
            Some(md) => {
                w.bool(true);
                md.snap_save(w);
            }
        }
        self.dram.snap_save(w);
        self.incoming.save(w);
        self.pending_resp.save(w);
        self.resp_out.save(w);
        self.dram_retry.save(w);
        w.u64(self.next_req_id);
        self.injector.snap_save(w);
        self.delayed.save(w);
        w.u64(self.now);
        w.u64(self.next_tick);
        w.u64(self.delay_faults);
        w.u64(self.md_stall_cycles);
    }

    /// Restores the partition in place from bytes written by
    /// [`Partition::snap_save`]. `allow_missing_md` admits a snapshot
    /// without an MD cache into a partition that has one (a cross-design
    /// fork from the baseline) — the as-built empty MD cache is kept.
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes or when the snapshot's MD-cache presence
    /// disagrees with this partition's configuration (subject to
    /// `allow_missing_md`).
    pub(crate) fn snap_load(
        &mut self,
        r: &mut SnapshotReader<'_>,
        allow_missing_md: bool,
    ) -> Result<(), SnapError> {
        self.l2.snap_load(r)?;
        self.mshr.snap_load(r)?;
        let has_md = r.bool()?;
        // A fork from a Base snapshot may restore into an MD-carrying
        // partition (the fresh empty MD cache is kept); every other
        // presence mismatch is a config error.
        let forgiven = allow_missing_md && !has_md;
        if has_md != self.md.is_some() && !forgiven {
            return Err(SnapError::Invariant {
                what: "md-cache presence mismatch",
            });
        }
        if has_md {
            if let Some(md) = self.md.as_mut() {
                md.snap_load(r)?;
            }
        }
        self.dram.snap_load(r)?;
        self.incoming = VecDeque::<PartReq>::load(r)?;
        self.pending_resp = Vec::<(u64, PartResp)>::load(r)?;
        self.resp_out = VecDeque::<PartResp>::load(r)?;
        self.dram_retry = VecDeque::<DramRequest>::load(r)?;
        self.next_req_id = r.u64()?;
        self.injector.snap_load(r)?;
        self.delayed = Vec::<(u64, DramRequest)>::load(r)?;
        self.now = r.u64()?;
        self.next_tick = r.u64()?;
        self.delay_faults = r.u64()?;
        self.md_stall_cycles = r.u64()?;
        self.events.clear();
        Ok(())
    }

    /// Occupancy snapshot for hang forensics.
    pub fn snapshot(&self) -> PartitionSnapshot {
        let d = self.dram.stats();
        PartitionSnapshot {
            id: self.id,
            incoming: self.incoming.len(),
            mshr_outstanding: self.mshr.outstanding(),
            mshr_capacity: self.mshr.capacity(),
            resp_out: self.resp_out.len(),
            pending_resp: self.pending_resp.len(),
            dram_idle: self.dram.idle(),
            dram_reads: d.reads,
            dram_writes: d.writes,
            md_lookups: self.md_lookups(),
            md_misses: self.md_misses(),
            delayed_requests: self.delayed.len(),
        }
    }
}

impl SnapshotState for PartReq {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.sm);
        w.u64(self.addr);
        w.bool(self.is_write);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(PartReq {
            sm: r.usize()?,
            addr: r.u64()?,
            is_write: r.bool()?,
        })
    }
}

impl SnapshotState for PartResp {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.sm);
        w.u64(self.addr);
        w.u32(self.flits);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(PartResp {
            sm: r.usize()?,
            addr: r.u64()?,
            flits: r.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assist::LineStore;
    use caba_compress::Algorithm;
    use caba_mem::func::LineCompressor;
    use caba_mem::{CompressionMap, FuncMem};

    fn oracle_parts() -> (FuncMem, CompressionMap, LineStore) {
        let mut mem = FuncMem::new();
        for i in 0..32u32 {
            mem.write_u32(i as u64 * 4, 0x7000 + i); // compressible line 0
        }
        let mut x = 99u64;
        for i in 0..16 {
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
            mem.write_u64(4096 + i * 8, x); // incompressible line
        }
        (
            mem,
            CompressionMap::new(LineCompressor::Fixed(Algorithm::Bdi)),
            LineStore::new(),
        )
    }

    #[test]
    fn oracle_sizes() {
        let (mem, mut cmap, ls) = oracle_parts();
        let mut o = SizeOracle {
            mem: SharedMem::Frozen(&mem),
            cmap: Some(SharedCmap::Direct(&mut cmap)),
            line_store: SharedLineStore::Frozen(&ls),
            mem_compressed: true,
            icnt_compressed: true,
        };
        assert!(o.dram_bursts(0) < 4);
        assert_eq!(o.dram_bursts(4096), 4);
        assert!(o.resp_flits(0) < 4);
        assert!(o.l2_size(0) < LINE_SIZE);

        let mut base = SizeOracle {
            mem: SharedMem::Frozen(&mem),
            cmap: None,
            line_store: SharedLineStore::Frozen(&ls),
            mem_compressed: false,
            icnt_compressed: false,
        };
        assert_eq!(base.dram_bursts(0), 4);
        assert_eq!(base.resp_flits(0), 4);
        assert_eq!(base.l2_size(0), LINE_SIZE);
    }

    fn run_until_resp(
        part: &mut Partition,
        oracle: &mut SizeOracle<'_>,
        max: u64,
    ) -> Option<(u64, PartResp)> {
        for c in 0..max {
            part.cycle(c, oracle);
            if let Some(r) = part.pop_response() {
                return Some((c, r));
            }
        }
        None
    }

    #[test]
    fn read_miss_then_hit_is_faster() {
        let cfg = GpuConfig::small();
        let (mem, mut cmap, ls) = oracle_parts();
        let mut part = Partition::new(0, cfg, false);
        let mut oracle = SizeOracle {
            mem: SharedMem::Frozen(&mem),
            cmap: Some(SharedCmap::Direct(&mut cmap)),
            line_store: SharedLineStore::Frozen(&ls),
            mem_compressed: false,
            icnt_compressed: false,
        };
        part.push(PartReq {
            sm: 3,
            addr: 0,
            is_write: false,
        });
        let (t_miss, r) = run_until_resp(&mut part, &mut oracle, 500).expect("miss completes");
        assert_eq!(r.sm, 3);
        assert_eq!(r.flits, 4);
        // Second access: L2 hit.
        part.push(PartReq {
            sm: 3,
            addr: 0,
            is_write: false,
        });
        let start = t_miss;
        let mut hit_at = None;
        for c in start + 1..start + 500 {
            part.cycle(c, &mut oracle);
            if let Some(_r) = part.pop_response() {
                hit_at = Some(c - start);
                break;
            }
        }
        let t_hit = hit_at.expect("hit completes");
        assert!(t_hit < t_miss, "hit {t_hit} vs miss {t_miss}");
        assert_eq!(part.l2_hits(), 1);
        assert_eq!(part.l2_misses(), 1);
        assert!(part.quiesced());
    }

    #[test]
    fn same_line_requests_merge_in_mshr() {
        let cfg = GpuConfig::small();
        let (mem, mut cmap, ls) = oracle_parts();
        let mut part = Partition::new(0, cfg, false);
        let mut oracle = SizeOracle {
            mem: SharedMem::Frozen(&mem),
            cmap: Some(SharedCmap::Direct(&mut cmap)),
            line_store: SharedLineStore::Frozen(&ls),
            mem_compressed: false,
            icnt_compressed: false,
        };
        for sm in 0..3 {
            part.push(PartReq {
                sm,
                addr: 0,
                is_write: false,
            });
        }
        let mut resps = Vec::new();
        for c in 0..600 {
            part.cycle(c, &mut oracle);
            while let Some(r) = part.pop_response() {
                resps.push(r.sm);
            }
        }
        resps.sort_unstable();
        assert_eq!(resps, vec![0, 1, 2]);
        // Only one DRAM read despite three requesters.
        assert_eq!(part.dram_stats().reads, 1);
    }

    #[test]
    fn compressed_read_uses_fewer_bursts() {
        let cfg = GpuConfig::small();
        let (mem, mut cmap, ls) = oracle_parts();
        let mut part = Partition::new(0, cfg, true);
        let mut oracle = SizeOracle {
            mem: SharedMem::Frozen(&mem),
            cmap: Some(SharedCmap::Direct(&mut cmap)),
            line_store: SharedLineStore::Frozen(&ls),
            mem_compressed: true,
            icnt_compressed: true,
        };
        part.push(PartReq {
            sm: 0,
            addr: 0,
            is_write: false,
        });
        let (_, r) = run_until_resp(&mut part, &mut oracle, 500).expect("completes");
        assert!(r.flits < 4);
        assert!(part.dram_stats().bursts < 4 + 1); // compressed line (+ md?)
        assert_eq!(part.md_lookups(), 1);
    }

    #[test]
    fn writes_fill_l2_and_spill_dirty_victims() {
        let cfg = GpuConfig::small();
        let (mem, mut cmap, ls) = oracle_parts();
        let mut part = Partition::new(0, cfg, false);
        let mut oracle = SizeOracle {
            mem: SharedMem::Frozen(&mem),
            cmap: Some(SharedCmap::Direct(&mut cmap)),
            line_store: SharedLineStore::Frozen(&ls),
            mem_compressed: false,
            icnt_compressed: false,
        };
        // Fill one L2 set (16 ways, 64 sets): same set = stride sets*128.
        let stride = 64 * 128u64;
        for i in 0..17u64 {
            part.push(PartReq {
                sm: 0,
                addr: i * stride,
                is_write: true,
            });
        }
        for c in 0..2000 {
            part.cycle(c, &mut oracle);
        }
        // 17 dirty fills into a 16-way set force ≥1 writeback.
        assert!(part.dram_stats().writes >= 1);
    }
}
