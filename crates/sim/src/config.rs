//! Simulated-system configuration (Table 1) and the evaluated design points.

use crate::assist::AssistController;
use crate::fault::FaultConfig;
use crate::observe::{ObservabilityConfig, TraceConfig};
use caba_compress::Algorithm;
use caba_mem::{CacheGeometry, DramConfig, LINE_SIZE};
use caba_stats::MetricsLevel;
use std::fmt;

/// Warp scheduling policy (Table 1 uses GTO, Rogers et al. \[68\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest: keep issuing from the last warp until it stalls,
    /// then fall back to the oldest ready warp.
    Gto,
    /// Loose round-robin: rotate the start position every cycle.
    RoundRobin,
    /// Strict oldest-first.
    OldestFirst,
}

/// Full GPU configuration. [`GpuConfig::isca2015`] reproduces Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors (15).
    pub num_sms: usize,
    /// Warp slots per SM (48 → 1536 threads).
    pub warps_per_sm: usize,
    /// Maximum resident thread blocks per SM (8).
    pub max_blocks_per_sm: usize,
    /// Registers per SM (32768 = 128 KB).
    pub regfile_per_sm: u32,
    /// Shared memory per SM in bytes (32 KB).
    pub shared_per_sm: u32,
    /// Warp schedulers per SM (2, GTO).
    pub schedulers_per_sm: usize,
    /// Warp scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// SP (ALU) pipeline latency in cycles.
    pub sp_latency: u64,
    /// SFU latency in cycles (tens of cycles; source of `dmr`'s data-dep
    /// stalls, §2).
    pub sfu_latency: u64,
    /// SFU initiation interval (a new SFU op accepted every N cycles).
    pub sfu_interval: u64,
    /// L1 data cache geometry (16 KB, 4-way).
    pub l1: CacheGeometry,
    /// L1 hit latency.
    pub l1_latency: u64,
    /// Shared-memory (scratchpad) access latency.
    pub shared_latency: u64,
    /// L2 slice geometry per partition (768 KB / 6, 16-way).
    pub l2: CacheGeometry,
    /// L2 hit latency (partition side).
    pub l2_latency: u64,
    /// MSHR entries per L1 / per L2 slice.
    pub mshrs: usize,
    /// LSU line-operation queue depth.
    pub lsu_queue: usize,
    /// Pending-store buffer capacity in lines (§4.2.2 Î).
    pub store_buffer: usize,
    /// Crossbar traversal latency (each direction).
    pub icnt_latency: u64,
    /// Memory partitions / GDDR5 channels (6).
    pub num_channels: usize,
    /// GDDR5 channel configuration (Table 1 timings).
    pub dram: DramConfig,
    /// Maximum concurrently active assist warps per SM.
    pub max_assist_warps: usize,
    /// Low-priority Assist Warp Buffer partition entries (2, §3.3).
    pub awb_low_priority_entries: usize,
    /// Store lines compressed in the L1 (the `CABA-L1-{2x,4x}` variants of
    /// Figure 13; combine with a tag-multiplied L1 geometry).
    pub l1_compressed: bool,
    /// Extra latency charged on every L1 hit to a compressed line when
    /// `l1_compressed` is set (the frequent-decompression overhead that
    /// degrades hs and LPS in Figure 13).
    pub l1_hit_decompress_penalty: u64,
    /// Enable the §4.3.2 metadata cache at the memory controllers
    /// (compressed designs). Disabling it models the naive design whose
    /// every DRAM access pays a second metadata access.
    pub md_cache_enabled: bool,
    /// When true, every assist-warp global store is checked against the
    /// functional truth (used by the test suite to prove the subroutines
    /// really decompress correctly).
    pub paranoid_assist_checks: bool,
    /// Forward-progress watchdog window in cycles: if no progress counter
    /// moves for this many consecutive cycles, `Gpu::run` aborts with
    /// [`crate::RunError::Hang`] carrying a
    /// [`crate::integrity::HangReport`]. 0 disables the watchdog.
    pub watchdog_window: u64,
    /// Run the structural invariant audits every N cycles (request
    /// conservation, occupancy bounds, scoreboard/SIMT consistency,
    /// compressed-line round trips). 0 disables auditing.
    pub audit_interval: u64,
    /// Deterministic fault injection (disabled by default).
    pub fault: FaultConfig,
    /// Observability: activity tracing and the metric registry. Record-only
    /// — no setting here may change timing — and fully off by default, so
    /// the cycle loop pays nothing unless asked.
    pub observability: ObservabilityConfig,
    /// Worker threads sharding the per-cycle SM / memory-partition loops
    /// (the barrier-phased engine). 1 = serial. Results are bit-identical
    /// for any value; this knob trades wall-clock for cores.
    pub intra_jobs: usize,
    /// Take a rolling in-memory machine snapshot every N cycles during
    /// `Gpu::run` (0 disables). Record-only — snapshots never change timing
    /// — and the basis for time-travel hang forensics: on a watchdog abort
    /// the last periodic snapshot is replayed with full tracing (see
    /// DESIGN.md "Checkpoint/restore and crash recovery").
    pub checkpoint_interval: u64,
    /// Next-event time skipping: when no scheduler can issue and every
    /// in-flight state change sits at a known future cycle, `Gpu::run`
    /// jumps the clock to the earliest such cycle instead of ticking,
    /// crediting the skipped span to the Fig. 1 stall buckets in bulk.
    /// Results are bit-identical with this on or off (DESIGN.md
    /// "Next-event clock"); the knob exists for A/B verification.
    pub time_skip: bool,
}

impl GpuConfig {
    /// The paper's simulated system (Table 1).
    pub fn isca2015() -> Self {
        GpuConfig {
            num_sms: 15,
            warps_per_sm: 48,
            max_blocks_per_sm: 8,
            regfile_per_sm: 32768,
            shared_per_sm: 32 * 1024,
            schedulers_per_sm: 2,
            scheduler: SchedulerPolicy::Gto,
            sp_latency: 4,
            sfu_latency: 20,
            sfu_interval: 8,
            l1: CacheGeometry::l1_isca2015(),
            l1_latency: 4,
            shared_latency: 24,
            l2: CacheGeometry::l2_slice_isca2015(),
            l2_latency: 30,
            mshrs: 32,
            lsu_queue: 64,
            store_buffer: 16,
            icnt_latency: 4,
            num_channels: 6,
            dram: DramConfig::isca2015(),
            max_assist_warps: 48,
            awb_low_priority_entries: 2,
            l1_compressed: false,
            l1_hit_decompress_penalty: 10,
            md_cache_enabled: true,
            paranoid_assist_checks: cfg!(debug_assertions),
            watchdog_window: 100_000,
            audit_interval: 0,
            fault: FaultConfig::disabled(),
            observability: ObservabilityConfig::default(),
            intra_jobs: 1,
            checkpoint_interval: 0,
            time_skip: true,
        }
    }

    /// A scaled-down configuration for fast unit tests: 5 SMs and 2
    /// channels (preserving the paper's 2.5 SM:MC ratio) with small L2
    /// slices so that modest working sets are DRAM-resident, putting small
    /// runs in the same memory-bound regime as the full machine.
    pub fn small() -> Self {
        let mut c = Self::isca2015();
        c.num_sms = 5;
        c.num_channels = 2;
        c.l2 = caba_mem::CacheGeometry::new(32 * 1024, 16, 128);
        c
    }

    /// The Table 1 machine with the L2 scaled down 8× (16 KB per slice).
    ///
    /// The synthetic workloads run footprints roughly 8× smaller than the
    /// paper's real inputs to keep simulations fast; scaling the L2 by the
    /// same factor preserves the L2-miss (DRAM-bound) regime that makes the
    /// paper's applications memory-bound. The figure-regeneration harness
    /// uses this configuration; see DESIGN.md.
    pub fn isca2015_scaled() -> Self {
        let mut c = Self::isca2015();
        c.l2 = caba_mem::CacheGeometry::new(16 * 1024, 16, 128);
        c
    }

    /// Scales peak DRAM bandwidth (the ½×/1×/2× sweeps of Figures 1 and 12).
    pub fn with_bandwidth_scale(mut self, factor: f64) -> Self {
        self.dram = self.dram.with_bandwidth_scale(factor);
        self
    }

    /// Replaces the L1 geometry (cache-compression studies, Fig. 13).
    pub fn with_l1(mut self, geo: CacheGeometry) -> Self {
        self.l1 = geo;
        self
    }

    /// Replaces the per-partition L2 geometry.
    pub fn with_l2(mut self, geo: CacheGeometry) -> Self {
        self.l2 = geo;
        self
    }

    /// Enables activity tracing (replaces the deprecated
    /// `Gpu::enable_tracing`). Retrieve the recorded
    /// [`crate::ActivityTrace`] with [`crate::Gpu::take_trace`] after `run`.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.observability.trace = Some(trace);
        self
    }

    /// Sets the metric-registry level; [`crate::Gpu::metrics_snapshot`]
    /// returns `Some` when it is not [`MetricsLevel::Off`].
    pub fn with_metrics(mut self, level: MetricsLevel) -> Self {
        self.observability.metrics = level;
        self
    }

    /// Total threads resident per SM.
    pub fn threads_per_sm(&self) -> u32 {
        (self.warps_per_sm * caba_isa::WARP_SIZE) as u32
    }

    /// Checks the configuration for mistakes that would otherwise surface
    /// as panics or wedged machines deep inside a run. Called by
    /// [`crate::Gpu::new`], so a bad sensitivity-sweep configuration fails
    /// fast with a message naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn nonzero(field: &'static str, value: usize) -> Result<(), ConfigError> {
            if value == 0 {
                Err(ConfigError::Zero { field })
            } else {
                Ok(())
            }
        }
        nonzero("num_sms", self.num_sms)?;
        if self.observability.trace.is_some_and(|t| t.interval == 0) {
            return Err(ConfigError::Zero {
                field: "observability.trace.interval",
            });
        }
        nonzero("num_channels", self.num_channels)?;
        nonzero("intra_jobs", self.intra_jobs)?;
        nonzero("warps_per_sm", self.warps_per_sm)?;
        nonzero("max_blocks_per_sm", self.max_blocks_per_sm)?;
        nonzero("schedulers_per_sm", self.schedulers_per_sm)?;
        nonzero("mshrs", self.mshrs)?;
        nonzero("lsu_queue", self.lsu_queue)?;
        nonzero("dram.banks", self.dram.banks)?;
        nonzero("dram.queue_capacity", self.dram.queue_capacity)?;
        for (field, geo) in [("l1", self.l1), ("l2", self.l2)] {
            if geo.line_size != LINE_SIZE {
                return Err(ConfigError::BadLineSize {
                    field,
                    line_size: geo.line_size,
                    expected: LINE_SIZE,
                });
            }
            if geo.ways == 0
                || geo.capacity % (geo.ways * geo.line_size) != 0
                || !geo.sets().is_power_of_two()
            {
                return Err(ConfigError::BadGeometry {
                    field,
                    capacity: geo.capacity,
                    ways: geo.ways,
                    line_size: geo.line_size,
                });
            }
        }
        if self.awb_low_priority_entries > self.max_assist_warps {
            return Err(ConfigError::AwbExceedsAssistWarps {
                awb: self.awb_low_priority_entries,
                max: self.max_assist_warps,
            });
        }
        for (field, value) in [
            ("sp_latency", self.sp_latency),
            ("l1_latency", self.l1_latency),
            ("sfu_interval", self.sfu_interval),
            ("dram.burst_cycles", self.dram.burst_cycles),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroLatency { field });
            }
        }
        for (field, rate) in [
            ("fault.drop_flit_rate", self.fault.drop_flit_rate),
            ("fault.dram_delay_rate", self.fault.dram_delay_rate),
            ("fault.corrupt_line_rate", self.fault.corrupt_line_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(ConfigError::BadRate { field, rate });
            }
        }
        if self.fault.enabled
            && self.fault.dram_delay_rate > 0.0
            && self.watchdog_window > 0
            && self.fault.dram_delay_cycles >= self.watchdog_window
        {
            return Err(ConfigError::DelayExceedsWatchdog {
                delay: self.fault.dram_delay_cycles,
                window: self.watchdog_window,
            });
        }
        Ok(())
    }
}

/// A rejected [`GpuConfig`], naming the offending field.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A structural count that must be at least 1 was zero.
    Zero {
        /// The offending field.
        field: &'static str,
    },
    /// A cache geometry uses a line size other than the simulator's.
    BadLineSize {
        /// The offending cache.
        field: &'static str,
        /// Configured line size.
        line_size: usize,
        /// Required line size.
        expected: usize,
    },
    /// A cache geometry is not line-size aligned / power-of-two sets.
    BadGeometry {
        /// The offending cache.
        field: &'static str,
        /// Configured capacity.
        capacity: usize,
        /// Configured associativity.
        ways: usize,
        /// Configured line size.
        line_size: usize,
    },
    /// The low-priority AWB partition cannot exceed the assist-warp table.
    AwbExceedsAssistWarps {
        /// Configured AWB low-priority entries.
        awb: usize,
        /// Configured max assist warps.
        max: usize,
    },
    /// A pipeline latency that must be at least one cycle was zero.
    ZeroLatency {
        /// The offending field.
        field: &'static str,
    },
    /// A fault-injection rate outside `[0, 1]`.
    BadRate {
        /// The offending field.
        field: &'static str,
        /// Configured rate.
        rate: f64,
    },
    /// Injected DRAM delays at least as long as the watchdog window would
    /// make every delay look like a hang.
    DelayExceedsWatchdog {
        /// Configured delay.
        delay: u64,
        /// Configured watchdog window.
        window: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero { field } => write!(f, "config field `{field}` must be non-zero"),
            ConfigError::BadLineSize {
                field,
                line_size,
                expected,
            } => write!(
                f,
                "config cache `{field}` has line size {line_size}, simulator requires {expected}"
            ),
            ConfigError::BadGeometry {
                field,
                capacity,
                ways,
                line_size,
            } => write!(
                f,
                "config cache `{field}` geometry {capacity}B/{ways}-way/{line_size}B lines is not \
                 line-aligned with power-of-two sets"
            ),
            ConfigError::AwbExceedsAssistWarps { awb, max } => write!(
                f,
                "awb_low_priority_entries ({awb}) exceeds max_assist_warps ({max})"
            ),
            ConfigError::ZeroLatency { field } => {
                write!(f, "config latency `{field}` must be at least 1 cycle")
            }
            ConfigError::BadRate { field, rate } => {
                write!(f, "fault rate `{field}` = {rate} is outside [0, 1]")
            }
            ConfigError::DelayExceedsWatchdog { delay, window } => write!(
                f,
                "fault.dram_delay_cycles ({delay}) must be below watchdog_window ({window})"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Where (and whether) data compression happens — the five design points of
/// §6 plus the CABA variants.
pub enum Design {
    /// No compression anywhere.
    Base,
    /// `HW-BDI-Mem` style: dedicated logic at the memory controller; DRAM
    /// transfers are compressed, the interconnect and L2 are not.
    HwMemOnly {
        /// Compression algorithm implemented in the MC logic.
        alg: Algorithm,
    },
    /// `HW-BDI` / `Ideal-BDI` style: dedicated logic at the cores; L2, the
    /// interconnect and DRAM all carry compressed lines.
    HwFull {
        /// Compression algorithm implemented in core-side logic.
        alg: Algorithm,
        /// When true, compression/decompression latencies are zero
        /// (`Ideal-BDI`).
        ideal: bool,
    },
    /// CABA: compression and decompression run as assist warps; the policy
    /// object (from `caba-core`) decides subroutines, priorities, and
    /// throttling.
    Caba(Box<dyn AssistController + Send>),
}

impl Design {
    /// The compression algorithm in use, if any.
    pub fn algorithm(&self) -> Option<Algorithm> {
        match self {
            Design::Base => None,
            Design::HwMemOnly { alg } => Some(*alg),
            Design::HwFull { alg, .. } => Some(*alg),
            Design::Caba(c) => c.algorithm(),
        }
    }

    /// True when lines travel compressed across the interconnect (affects
    /// flit counts; `HW-BDI-Mem` decompresses at the MC so its interconnect
    /// traffic is uncompressed).
    pub fn icnt_compressed(&self) -> bool {
        matches!(self, Design::HwFull { .. } | Design::Caba(_))
    }

    /// True when DRAM transfers are compressed.
    pub fn mem_compressed(&self) -> bool {
        !matches!(self, Design::Base)
    }

    /// True when this is a CABA design.
    pub fn is_caba(&self) -> bool {
        matches!(self, Design::Caba(_))
    }

    /// A per-SM copy of this design point. Non-CABA designs are stateless
    /// value types; CABA forks a fresh controller with the same policy
    /// (tags and staging slots are per-SM namespaces, so forked controllers
    /// behave identically to one shared instance).
    pub fn fork(&self) -> Design {
        match self {
            Design::Base => Design::Base,
            Design::HwMemOnly { alg } => Design::HwMemOnly { alg: *alg },
            Design::HwFull { alg, ideal } => Design::HwFull {
                alg: *alg,
                ideal: *ideal,
            },
            Design::Caba(c) => Design::Caba(c.fork()),
        }
    }

    /// Short name for reports.
    pub fn label(&self) -> String {
        match self {
            Design::Base => "Base".to_string(),
            Design::HwMemOnly { alg } => format!("HW-{}-Mem", alg.name()),
            Design::HwFull { alg, ideal: false } => format!("HW-{}", alg.name()),
            Design::HwFull { alg, ideal: true } => format!("Ideal-{}", alg.name()),
            Design::Caba(c) => {
                format!("CABA-{}", c.algorithm().map(|a| a.name()).unwrap_or("None"))
            }
        }
    }
}

impl std::fmt::Debug for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Design({})", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let c = GpuConfig::isca2015();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.warps_per_sm, 48);
        assert_eq!(c.threads_per_sm(), 1536);
        assert_eq!(c.max_blocks_per_sm, 8);
        assert_eq!(c.regfile_per_sm, 32768);
        assert_eq!(c.shared_per_sm, 32 * 1024);
        assert_eq!(c.schedulers_per_sm, 2);
        assert_eq!(c.num_channels, 6);
        assert_eq!(c.l1.capacity, 16 * 1024);
        assert_eq!(c.l1.ways, 4);
        assert_eq!(c.l2.capacity, 128 * 1024);
        assert_eq!(c.l2.ways, 16);
        // GDDR5 timings from Table 1.
        assert_eq!(c.dram.t_cl, 12);
        assert_eq!(c.dram.t_rp, 12);
        assert_eq!(c.dram.t_ras, 28);
        assert_eq!(c.dram.t_rcd, 12);
        assert_eq!(c.dram.t_rrd, 6);
        assert_eq!(c.dram.t_wr, 12);
        assert_eq!(c.dram.banks, 16);
    }

    #[test]
    fn stock_configs_validate() {
        assert_eq!(GpuConfig::isca2015().validate(), Ok(()));
        assert_eq!(GpuConfig::small().validate(), Ok(()));
        assert_eq!(GpuConfig::isca2015_scaled().validate(), Ok(()));
        assert_eq!(
            GpuConfig::small().with_bandwidth_scale(0.5).validate(),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = GpuConfig::small();
        c.num_sms = 0;
        assert_eq!(c.validate(), Err(ConfigError::Zero { field: "num_sms" }));

        let mut c = GpuConfig::small();
        c.num_channels = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::Zero {
                field: "num_channels"
            })
        );

        let mut c = GpuConfig::small();
        c.awb_low_priority_entries = c.max_assist_warps + 1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::AwbExceedsAssistWarps { .. })
        ));

        let mut c = GpuConfig::small();
        c.sp_latency = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroLatency {
                field: "sp_latency"
            })
        );

        let mut c = GpuConfig::small();
        c.fault.drop_flit_rate = 1.5;
        assert!(matches!(c.validate(), Err(ConfigError::BadRate { .. })));

        let mut c = GpuConfig::small();
        c.fault = crate::fault::FaultConfig::recover(1, 0.01);
        c.fault.dram_delay_cycles = c.watchdog_window;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::DelayExceedsWatchdog { .. })
        ));
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("watchdog_window"), "message: {msg}");
    }

    #[test]
    fn observability_builders_and_validation() {
        let c = GpuConfig::small()
            .with_trace(TraceConfig::full(128))
            .with_metrics(MetricsLevel::Full);
        assert_eq!(
            c.observability.trace,
            Some(TraceConfig {
                interval: 128,
                events: true
            })
        );
        assert!(c.observability.metrics.per_event());
        assert_eq!(c.validate(), Ok(()));

        let bad = GpuConfig::small().with_trace(TraceConfig::sampled(0));
        assert_eq!(
            bad.validate(),
            Err(ConfigError::Zero {
                field: "observability.trace.interval"
            })
        );
    }

    #[test]
    fn bandwidth_scaling() {
        let half = GpuConfig::isca2015().with_bandwidth_scale(0.5);
        assert_eq!(half.dram.burst_cycles, 4);
        let twice = GpuConfig::isca2015().with_bandwidth_scale(2.0);
        assert_eq!(twice.dram.burst_cycles, 1);
    }

    #[test]
    fn design_properties() {
        assert_eq!(Design::Base.label(), "Base");
        assert!(!Design::Base.mem_compressed());
        assert!(!Design::Base.icnt_compressed());
        let hw = Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        };
        assert_eq!(hw.label(), "HW-BDI");
        assert!(hw.icnt_compressed());
        assert!(hw.mem_compressed());
        assert!(!hw.is_caba());
        let ideal = Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: true,
        };
        assert_eq!(ideal.label(), "Ideal-BDI");
        let mem = Design::HwMemOnly {
            alg: Algorithm::Fpc,
        };
        assert_eq!(mem.label(), "HW-FPC-Mem");
        assert!(!mem.icnt_compressed());
        assert!(mem.mem_compressed());
        assert_eq!(mem.algorithm(), Some(Algorithm::Fpc));
        assert!(format!("{:?}", Design::Base).contains("Base"));
    }
}
