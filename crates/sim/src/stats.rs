//! Aggregated run statistics — every metric the paper's figures report.

use caba_stats::IssueBreakdown;

/// Statistics of one kernel run, aggregated over all SMs and partitions.
///
/// Derives `PartialEq`/`Eq` so the sweep executor's determinism selftest can
/// assert parallel results are bit-identical to serial ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total GPU cycles to completion.
    pub cycles: u64,
    /// Instructions issued by parent (application) warps.
    pub app_instructions: u64,
    /// Instructions issued by assist warps (CABA overhead, §6.2).
    pub assist_instructions: u64,
    /// Per-scheduler-slot issue breakdown (Figure 1).
    pub breakdown: IssueBreakdown,
    /// L1 hits / misses over all SMs.
    pub l1_hits: u64,
    /// L1 misses over all SMs.
    pub l1_misses: u64,
    /// L2 hits over all partitions.
    pub l2_hits: u64,
    /// L2 misses over all partitions.
    pub l2_misses: u64,
    /// DRAM data-bus busy cycles (all channels).
    pub dram_busy_cycles: u64,
    /// DRAM channel-cycles elapsed (all channels; = cycles × channels).
    pub dram_total_cycles: u64,
    /// DRAM bursts transferred.
    pub dram_bursts: u64,
    /// DRAM row-buffer activations (row misses).
    pub dram_activates: u64,
    /// Interconnect flits, both directions.
    pub icnt_flits: u64,
    /// Metadata-cache lookups (compressed designs).
    pub md_lookups: u64,
    /// Metadata-cache misses (each cost an extra DRAM access).
    pub md_misses: u64,
    /// Assist warps launched.
    pub assist_launches: u64,
    /// Store-buffer overflows (lines released uncompressed, §4.2.2 Ï).
    pub store_buffer_overflows: u64,
    /// Lines whose compression assist ran to completion.
    pub lines_compressed: u64,
    /// Lines decompressed (by assist warp or dedicated logic).
    pub lines_decompressed: u64,
    /// Shared-memory (scratchpad) accesses.
    pub shared_accesses: u64,
    /// Threads completed.
    pub threads_retired: u64,
    /// Invariant audits executed (each covers the whole machine).
    pub audits_run: u64,
    /// Crossbar packets dropped by fault injection.
    pub flits_dropped: u64,
    /// Dropped packets recovered by link-level retransmission
    /// (`FaultMode::Recover`).
    pub flit_retransmissions: u64,
    /// DRAM requests held back by fault injection.
    pub dram_delay_faults: u64,
    /// Compressed lines corrupted by fault injection.
    pub lines_corrupted: u64,
    /// Corrupted lines caught by round-trip verification at the fill
    /// boundary.
    pub corruptions_detected: u64,
    /// Detected-corrupt lines refetched from memory.
    pub corruption_refetches: u64,
}

impl RunStats {
    /// Instructions per cycle — the paper's primary performance metric (§5).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.app_instructions as f64 / self.cycles as f64
        }
    }

    /// DRAM data-bus utilization (the Figure 8 metric).
    pub fn bandwidth_utilization(&self) -> f64 {
        if self.dram_total_cycles == 0 {
            0.0
        } else {
            self.dram_busy_cycles as f64 / self.dram_total_cycles as f64
        }
    }

    /// MD-cache hit rate (§4.3.2; paper reports 85% average).
    pub fn md_hit_rate(&self) -> f64 {
        if self.md_lookups == 0 {
            0.0
        } else {
            1.0 - self.md_misses as f64 / self.md_lookups as f64
        }
    }

    /// L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        let t = self.l1_hits + self.l1_misses;
        if t == 0 {
            0.0
        } else {
            self.l1_hits as f64 / t as f64
        }
    }

    /// L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        let t = self.l2_hits + self.l2_misses;
        if t == 0 {
            0.0
        } else {
            self.l2_hits as f64 / t as f64
        }
    }

    /// Fraction of issued instructions that belonged to assist warps.
    pub fn assist_fraction(&self) -> f64 {
        let t = self.app_instructions + self.assist_instructions;
        if t == 0 {
            0.0
        } else {
            self.assist_instructions as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let s = RunStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.bandwidth_utilization(), 0.0);
        assert_eq!(s.md_hit_rate(), 0.0);
        assert_eq!(s.l1_hit_rate(), 0.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
        assert_eq!(s.assist_fraction(), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let s = RunStats {
            cycles: 100,
            app_instructions: 250,
            assist_instructions: 50,
            dram_busy_cycles: 30,
            dram_total_cycles: 60,
            md_lookups: 100,
            md_misses: 15,
            l1_hits: 3,
            l1_misses: 1,
            l2_hits: 1,
            l2_misses: 3,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.bandwidth_utilization() - 0.5).abs() < 1e-12);
        assert!((s.md_hit_rate() - 0.85).abs() < 1e-12);
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.l2_hit_rate() - 0.25).abs() < 1e-12);
        assert!((s.assist_fraction() - 50.0 / 300.0).abs() < 1e-12);
    }
}
