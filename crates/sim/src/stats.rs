//! Aggregated run statistics — every metric the paper's figures report.
//!
//! [`RunStats`] holds raw integer counters (and derives `Eq`, so determinism
//! tests compare runs bit-for-bit). Every *derived* rate lives in
//! [`StatsSummary`], produced by [`RunStats::summary`] — the single source
//! of IPC, hit rates, utilization, and Fig. 1 issue-slot fractions for every
//! report the workspace emits.

use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
use caba_stats::{json, IssueBreakdown, StallKind};
use std::io::{self, Write};

/// Statistics of one kernel run, aggregated over all SMs and partitions.
///
/// Derives `PartialEq`/`Eq` so the sweep executor's determinism selftest can
/// assert parallel results are bit-identical to serial ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total GPU cycles to completion.
    pub cycles: u64,
    /// Instructions issued by parent (application) warps.
    pub app_instructions: u64,
    /// Instructions issued by assist warps (CABA overhead, §6.2).
    pub assist_instructions: u64,
    /// Per-scheduler-slot issue breakdown (Figure 1).
    pub breakdown: IssueBreakdown,
    /// L1 hits / misses over all SMs.
    pub l1_hits: u64,
    /// L1 misses over all SMs.
    pub l1_misses: u64,
    /// L2 hits over all partitions.
    pub l2_hits: u64,
    /// L2 misses over all partitions.
    pub l2_misses: u64,
    /// DRAM data-bus busy cycles (all channels).
    pub dram_busy_cycles: u64,
    /// DRAM channel-cycles elapsed (all channels; = cycles × channels).
    pub dram_total_cycles: u64,
    /// DRAM bursts transferred.
    pub dram_bursts: u64,
    /// DRAM row-buffer activations (row misses).
    pub dram_activates: u64,
    /// Interconnect flits, both directions.
    pub icnt_flits: u64,
    /// Metadata-cache lookups (compressed designs).
    pub md_lookups: u64,
    /// Metadata-cache misses (each cost an extra DRAM access).
    pub md_misses: u64,
    /// DRAM burst-cycles spent servicing metadata-cache refills — the
    /// MD-cache overhead the paper's Fig. 14 design space trades against
    /// (§4.3.2).
    pub md_stall_cycles: u64,
    /// Assist warps launched.
    pub assist_launches: u64,
    /// Issue slots where a high-priority assist warp (decompression on the
    /// critical fill path) issued ahead of ready application warps —
    /// the Fig. 13 "assist steals a slot" overhead.
    pub assist_slots_stolen: u64,
    /// Issue slots where a low-priority assist warp issued in a slot no
    /// application warp could use (free compute, §3.3).
    pub assist_slots_reclaimed: u64,
    /// Store-buffer overflows (lines released uncompressed, §4.2.2 Ï).
    pub store_buffer_overflows: u64,
    /// Lines whose compression assist ran to completion.
    pub lines_compressed: u64,
    /// Lines decompressed (by assist warp or dedicated logic).
    pub lines_decompressed: u64,
    /// Shared-memory (scratchpad) accesses.
    pub shared_accesses: u64,
    /// Threads completed.
    pub threads_retired: u64,
    /// Invariant audits executed (each covers the whole machine).
    pub audits_run: u64,
    /// Crossbar packets dropped by fault injection.
    pub flits_dropped: u64,
    /// Dropped packets recovered by link-level retransmission
    /// (`FaultMode::Recover`).
    pub flit_retransmissions: u64,
    /// DRAM requests held back by fault injection.
    pub dram_delay_faults: u64,
    /// Compressed lines corrupted by fault injection.
    pub lines_corrupted: u64,
    /// Corrupted lines caught by round-trip verification at the fill
    /// boundary.
    pub corruptions_detected: u64,
    /// Detected-corrupt lines refetched from memory.
    pub corruption_refetches: u64,
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl RunStats {
    /// Computes every derived rate in one place. All reports (sweep JSON,
    /// diagnostics, figure emitters) must go through this — never hand-roll
    /// an IPC or hit-rate division elsewhere.
    pub fn summary(&self) -> StatsSummary {
        let mut issue_fractions = [0.0; StallKind::ALL.len()];
        for (f, k) in issue_fractions.iter_mut().zip(StallKind::ALL) {
            *f = self.breakdown.fraction(k);
        }
        StatsSummary {
            cycles: self.cycles,
            app_instructions: self.app_instructions,
            assist_instructions: self.assist_instructions,
            ipc: ratio(self.app_instructions, self.cycles),
            assist_fraction: ratio(
                self.assist_instructions,
                self.app_instructions + self.assist_instructions,
            ),
            l1_hit_rate: ratio(self.l1_hits, self.l1_hits + self.l1_misses),
            l2_hit_rate: ratio(self.l2_hits, self.l2_hits + self.l2_misses),
            md_hit_rate: if self.md_lookups == 0 {
                0.0
            } else {
                1.0 - ratio(self.md_misses, self.md_lookups)
            },
            bandwidth_utilization: ratio(self.dram_busy_cycles, self.dram_total_cycles),
            icnt_flits: self.icnt_flits,
            md_stall_cycles: self.md_stall_cycles,
            assist_slots_stolen: self.assist_slots_stolen,
            assist_slots_reclaimed: self.assist_slots_reclaimed,
            issue_fractions,
        }
    }

    /// Instructions per cycle — the paper's primary performance metric (§5).
    pub fn ipc(&self) -> f64 {
        self.summary().ipc
    }

    /// DRAM data-bus utilization (the Figure 8 metric).
    pub fn bandwidth_utilization(&self) -> f64 {
        self.summary().bandwidth_utilization
    }

    /// MD-cache hit rate (§4.3.2; paper reports 85% average).
    pub fn md_hit_rate(&self) -> f64 {
        self.summary().md_hit_rate
    }

    /// L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        self.summary().l1_hit_rate
    }

    /// L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        self.summary().l2_hit_rate
    }

    /// Fraction of issued instructions that belonged to assist warps.
    pub fn assist_fraction(&self) -> f64 {
        self.summary().assist_fraction
    }
}

impl SnapshotState for RunStats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.cycles.save(w);
        self.app_instructions.save(w);
        self.assist_instructions.save(w);
        self.breakdown.save(w);
        self.l1_hits.save(w);
        self.l1_misses.save(w);
        self.l2_hits.save(w);
        self.l2_misses.save(w);
        self.dram_busy_cycles.save(w);
        self.dram_total_cycles.save(w);
        self.dram_bursts.save(w);
        self.dram_activates.save(w);
        self.icnt_flits.save(w);
        self.md_lookups.save(w);
        self.md_misses.save(w);
        self.md_stall_cycles.save(w);
        self.assist_launches.save(w);
        self.assist_slots_stolen.save(w);
        self.assist_slots_reclaimed.save(w);
        self.store_buffer_overflows.save(w);
        self.lines_compressed.save(w);
        self.lines_decompressed.save(w);
        self.shared_accesses.save(w);
        self.threads_retired.save(w);
        self.audits_run.save(w);
        self.flits_dropped.save(w);
        self.flit_retransmissions.save(w);
        self.dram_delay_faults.save(w);
        self.lines_corrupted.save(w);
        self.corruptions_detected.save(w);
        self.corruption_refetches.save(w);
    }

    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(RunStats {
            cycles: u64::load(r)?,
            app_instructions: u64::load(r)?,
            assist_instructions: u64::load(r)?,
            breakdown: IssueBreakdown::load(r)?,
            l1_hits: u64::load(r)?,
            l1_misses: u64::load(r)?,
            l2_hits: u64::load(r)?,
            l2_misses: u64::load(r)?,
            dram_busy_cycles: u64::load(r)?,
            dram_total_cycles: u64::load(r)?,
            dram_bursts: u64::load(r)?,
            dram_activates: u64::load(r)?,
            icnt_flits: u64::load(r)?,
            md_lookups: u64::load(r)?,
            md_misses: u64::load(r)?,
            md_stall_cycles: u64::load(r)?,
            assist_launches: u64::load(r)?,
            assist_slots_stolen: u64::load(r)?,
            assist_slots_reclaimed: u64::load(r)?,
            store_buffer_overflows: u64::load(r)?,
            lines_compressed: u64::load(r)?,
            lines_decompressed: u64::load(r)?,
            shared_accesses: u64::load(r)?,
            threads_retired: u64::load(r)?,
            audits_run: u64::load(r)?,
            flits_dropped: u64::load(r)?,
            flit_retransmissions: u64::load(r)?,
            dram_delay_faults: u64::load(r)?,
            lines_corrupted: u64::load(r)?,
            corruptions_detected: u64::load(r)?,
            corruption_refetches: u64::load(r)?,
        })
    }
}

/// Every derived rate of one run, plus the headline counters they came
/// from — the single serializable summary consumed by sweep reports and
/// figure emitters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSummary {
    /// Total GPU cycles to completion.
    pub cycles: u64,
    /// Application-warp instructions issued.
    pub app_instructions: u64,
    /// Assist-warp instructions issued.
    pub assist_instructions: u64,
    /// Application instructions per cycle.
    pub ipc: f64,
    /// Assist share of all issued instructions.
    pub assist_fraction: f64,
    /// L1 hit rate.
    pub l1_hit_rate: f64,
    /// L2 hit rate.
    pub l2_hit_rate: f64,
    /// Metadata-cache hit rate (0 when the design keeps no metadata).
    pub md_hit_rate: f64,
    /// DRAM data-bus utilization.
    pub bandwidth_utilization: f64,
    /// Interconnect flits, both directions.
    pub icnt_flits: u64,
    /// DRAM burst-cycles spent on metadata-cache refills.
    pub md_stall_cycles: u64,
    /// Issue slots a high-priority assist took from ready app warps.
    pub assist_slots_stolen: u64,
    /// Issue slots only an assist warp could use.
    pub assist_slots_reclaimed: u64,
    /// Fraction of scheduler issue slots in each Fig. 1 bucket, indexed
    /// parallel to [`StallKind::ALL`].
    pub issue_fractions: [f64; StallKind::ALL.len()],
}

impl StatsSummary {
    /// Serializes the summary as one JSON object. Issue-slot fractions nest
    /// under `"issue_fractions"`, keyed by [`StallKind::slug`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_json<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "{{\"cycles\": {}, \"app_instructions\": {}, \"assist_instructions\": {}, \
             \"ipc\": {}, \"assist_fraction\": {}, \"l1_hit_rate\": {}, \
             \"l2_hit_rate\": {}, \"md_hit_rate\": {}, \"bandwidth_utilization\": {}, \
             \"icnt_flits\": {}, \"md_stall_cycles\": {}, \"assist_slots_stolen\": {}, \
             \"assist_slots_reclaimed\": {}, \"issue_fractions\": {{",
            self.cycles,
            self.app_instructions,
            self.assist_instructions,
            json::fmt_f64(self.ipc),
            json::fmt_f64(self.assist_fraction),
            json::fmt_f64(self.l1_hit_rate),
            json::fmt_f64(self.l2_hit_rate),
            json::fmt_f64(self.md_hit_rate),
            json::fmt_f64(self.bandwidth_utilization),
            self.icnt_flits,
            self.md_stall_cycles,
            self.assist_slots_stolen,
            self.assist_slots_reclaimed,
        )?;
        for (i, k) in StallKind::ALL.iter().enumerate() {
            if i > 0 {
                w.write_all(b", ")?;
            }
            write!(
                w,
                "\"{}\": {}",
                json::escape(k.slug()),
                json::fmt_f64(self.issue_fractions[i])
            )?;
        }
        w.write_all(b"}}")
    }

    /// [`StatsSummary::write_json`] into a `String`.
    pub fn to_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_json(&mut buf)
            .expect("Vec<u8> writes are infallible");
        String::from_utf8(buf).expect("JSON output is UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let s = RunStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.bandwidth_utilization(), 0.0);
        assert_eq!(s.md_hit_rate(), 0.0);
        assert_eq!(s.l1_hit_rate(), 0.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
        assert_eq!(s.assist_fraction(), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let s = RunStats {
            cycles: 100,
            app_instructions: 250,
            assist_instructions: 50,
            dram_busy_cycles: 30,
            dram_total_cycles: 60,
            md_lookups: 100,
            md_misses: 15,
            l1_hits: 3,
            l1_misses: 1,
            l2_hits: 1,
            l2_misses: 3,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.bandwidth_utilization() - 0.5).abs() < 1e-12);
        assert!((s.md_hit_rate() - 0.85).abs() < 1e-12);
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.l2_hit_rate() - 0.25).abs() < 1e-12);
        assert!((s.assist_fraction() - 50.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn summary_json_is_valid_and_complete() {
        let mut s = RunStats {
            cycles: 100,
            app_instructions: 250,
            md_stall_cycles: 8,
            assist_slots_stolen: 3,
            assist_slots_reclaimed: 5,
            ..Default::default()
        };
        for _ in 0..150 {
            s.breakdown.record(StallKind::IssuedApp);
        }
        for _ in 0..50 {
            s.breakdown.record(StallKind::MemoryData);
        }
        let sum = s.summary();
        assert!((sum.issue_fractions[0] - 0.75).abs() < 1e-12);
        let json_text = sum.to_json();
        json::validate(&json_text).expect("summary JSON parses");
        assert!(json_text.contains("\"ipc\": 2.5"));
        assert!(json_text.contains("\"md_stall_cycles\": 8"));
        assert!(json_text.contains("\"memory-data\": 0.25"));
        // Delegating accessors and the summary must agree exactly.
        assert_eq!(s.ipc(), sum.ipc);
        assert_eq!(s.assist_fraction(), sum.assist_fraction);
    }
}
