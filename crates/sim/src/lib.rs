//! A cycle-level, execution-driven GPGPU simulator — the substrate the CABA
//! paper evaluates on (GPGPU-Sim 3.2.1 with the Table 1 configuration),
//! rebuilt from scratch in Rust.
//!
//! # Architecture
//!
//! * [`GpuConfig`] — Table 1 parameters (15 SMs, 48 warps/SM, GTO schedulers,
//!   2 schedulers/SM, 16 KB L1, 768 KB L2 over 6 partitions, GDDR5 timing).
//! * [`Sm`] — one streaming multiprocessor: warp contexts with SIMT
//!   reconvergence stacks, scoreboards, two greedy-then-oldest schedulers,
//!   SP/SFU pipelines, a load-store unit with coalescing, an L1 with MSHRs,
//!   a store buffer, and the assist-warp runtime (AWT/AWB mechanics of §3.3,
//!   driven by a policy object from `caba-core`).
//! * [`Gpu`] — SMs + two crossbars + memory partitions (L2 slice + MD cache
//!   plus GDDR5 channel each) + the CTA dispatcher; runs a [`Kernel`] to
//!   completion and reports [`RunStats`].
//! * [`Design`] — the evaluated design points of §6: `Base`, `HW-BDI-Mem`,
//!   `HW-BDI`, `CABA-*` (via an [`AssistController`]), `Ideal-*`.
//! * [`integrity`]/[`fault`] — the simulation integrity layer: a
//!   forward-progress watchdog and structural invariant audits turn wedges
//!   and lost requests into typed [`RunError`]s with a [`HangReport`], and
//!   seeded fault injection ([`FaultConfig`]) proves the audits catch what
//!   they claim to.
//!
//! Execution is *functional-at-issue*: instruction values (including loaded
//! data) are computed against the functional memory when the instruction
//! issues, while the timing model independently decides when the scoreboard
//! releases. This mirrors GPGPU-Sim's performance-simulation mode and is
//! exact for data-race-free kernels, which all the workloads are.
//!
//! # Examples
//!
//! Run a trivial kernel on the baseline GPU:
//!
//! ```
//! use caba_isa::{Kernel, LaunchDims, ProgramBuilder, Reg, Src, Special, AluOp, Width, Space};
//! use caba_sim::{Design, Gpu, GpuConfig};
//!
//! let mut b = ProgramBuilder::new();
//! let (tid, addr) = (Reg(0), Reg(1));
//! b.global_thread_id(tid);
//! b.alu(AluOp::Shl, addr, Src::Reg(tid), Src::Imm(2));
//! b.alu(AluOp::Add, addr, Src::Reg(addr), Src::Sp(Special::Param(0)));
//! b.st(Space::Global, Width::B4, Src::Reg(tid), Src::Reg(addr), 0);
//! b.exit();
//! let kernel = Kernel::new("demo", b.build(), LaunchDims::new(4, 64))
//!     .with_params(vec![0x10000]);
//!
//! let mut gpu = Gpu::new(GpuConfig::isca2015(), Design::Base);
//! let stats = gpu.run(&kernel, 1_000_000).expect("kernel completes");
//! assert!(stats.cycles > 0);
//! assert_eq!(gpu.mem().read_u32(0x10000 + 4 * 37), 37);
//! ```

pub mod assist;
pub mod config;
pub mod exec;
pub mod fault;
pub mod gpu;
pub mod integrity;
pub mod lsu;
pub mod mempart;
pub mod observe;
pub mod occupancy;
mod shard;
pub mod sm;
pub mod snapshot;
pub mod stats;
pub mod trace;
pub mod warp;

pub use assist::{
    AssistController, AssistLaunch, AssistOutcome, AssistPriority, FillAction, FillInfo,
    SmServices, StoreAction, StoreInfo,
};
pub use config::{ConfigError, Design, GpuConfig, SchedulerPolicy};
pub use fault::{FaultConfig, FaultInjector, FaultMode};
pub use gpu::{Gpu, RunError};
pub use integrity::{
    Component, HangReport, PartitionSnapshot, SmSnapshot, Violation, WarpSnapshot, WarpState,
};
pub use observe::{ObservabilityConfig, TraceConfig};
pub use occupancy::OccupancyInfo;
pub use sm::Sm;
pub use snapshot::RestoreError;
pub use stats::{RunStats, StatsSummary};
pub use trace::{ActivityTrace, Sample, TraceEvent, TraceEventKind};
pub use warp::{SimtEntry, Warp};

pub use caba_isa::Kernel;
pub use caba_stats::{MetricsLevel, MetricsSnapshot, StallKind};
