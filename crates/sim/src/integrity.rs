//! Structural invariant audits and hang forensics.
//!
//! The integrity layer has three jobs, all wired into [`crate::Gpu::run`]:
//!
//! 1. **Forward-progress watchdog** — a signature of monotone progress
//!    counters (instructions issued, LSU ops drained, DRAM bursts, crossbar
//!    flit movement, threads retired) is sampled every cycle; if it does not
//!    change for [`crate::GpuConfig::watchdog_window`] cycles the run aborts
//!    with [`crate::RunError::Hang`] instead of burning the whole cycle
//!    budget.
//! 2. **Invariant audits** — every
//!    [`crate::GpuConfig::audit_interval`] cycles the whole machine is
//!    checked for request conservation (every in-flight read is carried by
//!    exactly the stage the ledger says it is in), occupancy bounds
//!    (MSHRs, store buffers, queues), scoreboard/SIMT-stack consistency,
//!    and compressed-line round-trip correctness. Any [`Violation`] aborts
//!    the run with [`crate::RunError::AuditFailed`].
//! 3. **Hang forensics** — both failure paths attach a [`HangReport`]
//!    snapshot (per-warp state with a Figure-1-style stall reason, per-SM
//!    queue occupancy, per-partition DRAM/MD-cache state, the oldest
//!    in-flight request) whose `Display` is designed to be read by a human
//!    debugging the wedge.

use std::fmt;

/// The component a violation is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// A streaming multiprocessor (L1/MSHR/scoreboard/SIMT state).
    Sm(usize),
    /// The request-direction crossbar (SM → memory partition).
    CrossbarRequest,
    /// The response-direction crossbar (memory partition → SM).
    CrossbarResponse,
    /// A memory partition (L2 slice, partition MSHRs, DRAM channel).
    Partition(usize),
    /// The reference compression map (cached compressed forms).
    CompressionMap,
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Sm(i) => write!(f, "SM {i}"),
            Component::CrossbarRequest => write!(f, "request crossbar"),
            Component::CrossbarResponse => write!(f, "response crossbar"),
            Component::Partition(i) => write!(f, "partition {i}"),
            Component::CompressionMap => write!(f, "compression map"),
        }
    }
}

/// One structural invariant violation found by an audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle the audit ran.
    pub cycle: u64,
    /// Component the violation is attributed to.
    pub component: Component,
    /// Human-readable description of the broken invariant.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cycle {}] {}: {}",
            self.cycle, self.component, self.detail
        )
    }
}

/// Why a warp could not issue, in the Figure 1 taxonomy of the paper
/// (compute/memory structural stalls, data-dependence stalls, idle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// All lanes exited.
    Done,
    /// Waiting at a block-wide barrier.
    AtBarrier,
    /// Blocked on an unresolved register (data-dependence stall); carries
    /// the number of loads still outstanding.
    DataDependence {
        /// Loads in flight for this warp.
        outstanding_loads: u32,
    },
    /// Blocked on a busy memory pipeline (memory structural stall).
    MemoryStructural,
    /// Blocked on a busy compute pipeline (compute structural stall).
    ComputeStructural,
    /// Ready to issue (the scheduler just has not picked it).
    Ready,
}

impl fmt::Display for WarpState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarpState::Done => write!(f, "done"),
            WarpState::AtBarrier => write!(f, "at barrier"),
            WarpState::DataDependence { outstanding_loads } => {
                write!(
                    f,
                    "data-dependence stall ({outstanding_loads} loads in flight)"
                )
            }
            WarpState::MemoryStructural => write!(f, "memory structural stall"),
            WarpState::ComputeStructural => write!(f, "compute structural stall"),
            WarpState::Ready => write!(f, "ready"),
        }
    }
}

/// One live warp in a [`SmSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpSnapshot {
    /// Warp slot within the SM.
    pub slot: usize,
    /// Owning CTA id.
    pub ctaid: u32,
    /// Current PC.
    pub pc: usize,
    /// Active lane mask.
    pub active_mask: u32,
    /// Stall classification at snapshot time.
    pub state: WarpState,
}

/// Per-SM occupancy and warp state at hang time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SmSnapshot {
    /// SM id.
    pub id: usize,
    /// Live (unretired) warps.
    pub warps: Vec<WarpSnapshot>,
    /// Outstanding L1 MSHR lines / capacity.
    pub mshr_outstanding: usize,
    /// L1 MSHR capacity.
    pub mshr_capacity: usize,
    /// Line operations queued in the LSU.
    pub lsu_pending: usize,
    /// Lines held in the pending-store buffer.
    pub store_buffer: usize,
    /// Requests waiting to enter the interconnect.
    pub out_reqs: usize,
    /// Live assist warps.
    pub assists_active: usize,
    /// Lines whose fills wait on a decompression assist warp.
    pub pending_decomp: usize,
}

/// Per-partition occupancy at hang time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionSnapshot {
    /// Partition id.
    pub id: usize,
    /// Requests queued from the interconnect.
    pub incoming: usize,
    /// Outstanding L2 MSHR lines.
    pub mshr_outstanding: usize,
    /// L2 MSHR capacity.
    pub mshr_capacity: usize,
    /// Responses awaiting the interconnect.
    pub resp_out: usize,
    /// L2-hit responses still paying hit latency.
    pub pending_resp: usize,
    /// True when the DRAM channel has no work at all.
    pub dram_idle: bool,
    /// DRAM reads serviced so far.
    pub dram_reads: u64,
    /// DRAM writes serviced so far.
    pub dram_writes: u64,
    /// MD-cache lookups so far.
    pub md_lookups: u64,
    /// MD-cache misses so far.
    pub md_misses: u64,
    /// Fault-injected DRAM requests currently held in the delay queue.
    pub delayed_requests: usize,
}

/// A machine-state snapshot attached to watchdog/timeout failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangReport {
    /// Cycle the failure was declared.
    pub cycle: u64,
    /// Watchdog window in force (0 = disabled; timeout path).
    pub window: u64,
    /// CTAs dispatched so far.
    pub ctas_dispatched: usize,
    /// Total CTAs in the grid.
    pub grid_ctas: usize,
    /// Per-SM state.
    pub sms: Vec<SmSnapshot>,
    /// Per-partition state.
    pub partitions: Vec<PartitionSnapshot>,
    /// Packets inside the request crossbar.
    pub xbar_fwd_in_flight: usize,
    /// Packets inside the response crossbar.
    pub xbar_rsp_in_flight: usize,
    /// Oldest in-flight read: (age in cycles, issuing SM, line address).
    pub oldest_request: Option<(u64, usize, u64)>,
    /// Path of the time-travel forensics trace, when the run kept periodic
    /// checkpoints ([`crate::GpuConfig::checkpoint_interval`] > 0): the
    /// window from the most recent checkpoint to the hang is re-executed
    /// with full tracing and the Chrome-trace JSON written here.
    pub trace_path: Option<String>,
}

impl HangReport {
    /// Total live (unretired) warps across the machine.
    pub fn live_warps(&self) -> usize {
        self.sms.iter().map(|s| s.warps.len()).sum()
    }

    /// Live warps currently waiting at a barrier.
    pub fn warps_at_barrier(&self) -> usize {
        self.sms
            .iter()
            .flat_map(|s| s.warps.iter())
            .filter(|w| w.state == WarpState::AtBarrier)
            .count()
    }
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hang report at cycle {} (watchdog window {}):",
            self.cycle, self.window
        )?;
        writeln!(
            f,
            "  grid: {}/{} CTAs dispatched, {} live warps ({} at barrier)",
            self.ctas_dispatched,
            self.grid_ctas,
            self.live_warps(),
            self.warps_at_barrier()
        )?;
        if let Some((age, sm, addr)) = self.oldest_request {
            writeln!(
                f,
                "  oldest in-flight read: line {addr:#x} from SM {sm}, {age} cycles old"
            )?;
        }
        writeln!(
            f,
            "  crossbars: {} request / {} response packets in flight",
            self.xbar_fwd_in_flight, self.xbar_rsp_in_flight
        )?;
        if let Some(path) = &self.trace_path {
            writeln!(f, "  forensics trace: {path}")?;
        }
        for sm in &self.sms {
            writeln!(
                f,
                "  SM {}: {} warps, MSHR {}/{}, LSU {} ops, store-buffer {}, \
                 {} out-reqs, {} assists, {} pending decompressions",
                sm.id,
                sm.warps.len(),
                sm.mshr_outstanding,
                sm.mshr_capacity,
                sm.lsu_pending,
                sm.store_buffer,
                sm.out_reqs,
                sm.assists_active,
                sm.pending_decomp
            )?;
            for w in &sm.warps {
                writeln!(
                    f,
                    "    warp {} (cta {}) pc={} mask={:#010x}: {}",
                    w.slot, w.ctaid, w.pc, w.active_mask, w.state
                )?;
            }
        }
        for p in &self.partitions {
            writeln!(
                f,
                "  partition {}: incoming {}, MSHR {}/{}, resp-out {}, pending-resp {}, \
                 dram {} (r {} / w {}), md {}/{} misses, {} delayed by faults",
                p.id,
                p.incoming,
                p.mshr_outstanding,
                p.mshr_capacity,
                p.resp_out,
                p.pending_resp,
                if p.dram_idle { "idle" } else { "busy" },
                p.dram_reads,
                p.dram_writes,
                p.md_misses,
                p.md_lookups,
                p.delayed_requests
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_names_component() {
        let v = Violation {
            cycle: 100,
            component: Component::CrossbarRequest,
            detail: "request for line 0x80 has no carrier".into(),
        };
        let s = v.to_string();
        assert!(s.contains("cycle 100"));
        assert!(s.contains("request crossbar"));
        assert!(s.contains("0x80"));
    }

    #[test]
    fn hang_report_display_is_readable() {
        let report = HangReport {
            cycle: 5000,
            window: 1000,
            ctas_dispatched: 2,
            grid_ctas: 4,
            sms: vec![SmSnapshot {
                id: 0,
                warps: vec![WarpSnapshot {
                    slot: 3,
                    ctaid: 1,
                    pc: 17,
                    active_mask: 0xFFFF_FFFF,
                    state: WarpState::AtBarrier,
                }],
                mshr_outstanding: 1,
                mshr_capacity: 32,
                ..Default::default()
            }],
            partitions: vec![PartitionSnapshot {
                id: 0,
                dram_idle: true,
                ..Default::default()
            }],
            xbar_fwd_in_flight: 0,
            xbar_rsp_in_flight: 0,
            oldest_request: Some((4200, 0, 0x1000)),
            trace_path: Some("/tmp/caba-hang.trace.json".into()),
        };
        let s = report.to_string();
        assert!(s.contains("forensics trace: /tmp/caba-hang.trace.json"));
        assert!(s.contains("cycle 5000"));
        assert!(s.contains("2/4 CTAs"));
        assert!(s.contains("at barrier"));
        assert!(s.contains("0x1000"));
        assert!(s.contains("MSHR 1/32"));
        assert_eq!(report.live_warps(), 1);
        assert_eq!(report.warps_at_barrier(), 1);
    }
}
