//! The load/store unit: a line-granular operation queue fed by the
//! coalescer (which already ran in [`crate::exec`]) and drained at one line
//! access per cycle.
//!
//! A fully diverged 32-lane load therefore occupies the LSU for 32 cycles —
//! exactly the back-pressure that produces the paper's *Memory (structural)
//! stalls* for irregular applications (Figure 1).

use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
use std::collections::VecDeque;

/// Identifies the issuing context of a line operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WarpRef {
    /// An application warp slot.
    App(usize),
    /// An assist warp slot.
    Assist(usize),
}

/// The kind of line operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOpKind {
    /// Global load: L1 lookup, may miss to memory. `ticket` joins the line
    /// fills of one load instruction.
    Load {
        /// Load-ticket index in the SM's ticket slab.
        ticket: usize,
    },
    /// Global store: write-through toward L2/memory.
    Store,
    /// Assist-warp local access: occupies the LSU slot, completes at L1
    /// latency, generates no external traffic (the line is core-resident).
    AssistLocal {
        /// Load-ticket index when the access produces a register result
        /// (assist stores are fire-and-forget).
        ticket: Option<usize>,
    },
}

/// One line-granular LSU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineOp {
    /// Issuing warp.
    pub warp: WarpRef,
    /// Line base address.
    pub addr: u64,
    /// Operation kind.
    pub kind: LineOpKind,
}

/// The LSU queue.
#[derive(Debug)]
pub struct Lsu {
    queue: VecDeque<LineOp>,
    capacity: usize,
    processed: u64,
}

impl Lsu {
    /// Creates an LSU with room for `capacity` pending line operations.
    pub fn new(capacity: usize) -> Self {
        Lsu {
            queue: VecDeque::new(),
            capacity,
            processed: 0,
        }
    }

    /// True when an instruction generating `n` line ops can be accepted.
    pub fn can_accept(&self, n: usize) -> bool {
        self.queue.len() + n <= self.capacity
    }

    /// Enqueues one line operation. The capacity is an *instruction
    /// admission* threshold (checked via [`Lsu::can_accept`] before issuing
    /// a memory instruction); a single admitted instruction may push all of
    /// its coalesced line operations even past the threshold.
    pub fn push(&mut self, op: LineOp) {
        self.queue.push_back(op);
    }

    /// The operation at the head, if any.
    pub fn head(&self) -> Option<&LineOp> {
        self.queue.front()
    }

    /// Removes and returns the head (after the SM determined it can
    /// proceed).
    pub fn pop(&mut self) -> Option<LineOp> {
        let op = self.queue.pop_front();
        if op.is_some() {
            self.processed += 1;
        }
        op
    }

    /// Pending operation count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total operations processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Serializes the pending queue and processed counter (capacity is
    /// config-derived).
    pub fn snap_save(&self, w: &mut SnapshotWriter) {
        w.u64(self.processed);
        self.queue.save(w);
    }

    /// Restores queue contents in place.
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes.
    pub fn snap_load(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapError> {
        self.processed = r.u64()?;
        self.queue = VecDeque::<LineOp>::load(r)?;
        Ok(())
    }
}

impl SnapshotState for WarpRef {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            WarpRef::App(i) => {
                w.u8(0);
                w.usize(*i);
            }
            WarpRef::Assist(i) => {
                w.u8(1);
                w.usize(*i);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(WarpRef::App(r.usize()?)),
            1 => Ok(WarpRef::Assist(r.usize()?)),
            t => Err(SnapError::BadTag {
                what: "WarpRef",
                tag: t as u64,
            }),
        }
    }
}

impl SnapshotState for LineOpKind {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            LineOpKind::Load { ticket } => {
                w.u8(0);
                w.usize(*ticket);
            }
            LineOpKind::Store => w.u8(1),
            LineOpKind::AssistLocal { ticket } => {
                w.u8(2);
                ticket.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(LineOpKind::Load { ticket: r.usize()? }),
            1 => Ok(LineOpKind::Store),
            2 => Ok(LineOpKind::AssistLocal {
                ticket: Option::<usize>::load(r)?,
            }),
            t => Err(SnapError::BadTag {
                what: "LineOpKind",
                tag: t as u64,
            }),
        }
    }
}

impl SnapshotState for LineOp {
    fn save(&self, w: &mut SnapshotWriter) {
        self.warp.save(w);
        w.u64(self.addr);
        self.kind.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(LineOp {
            warp: WarpRef::load(r)?,
            addr: r.u64()?,
            kind: LineOpKind::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(addr: u64) -> LineOp {
        LineOp {
            warp: WarpRef::App(0),
            addr,
            kind: LineOpKind::Store,
        }
    }

    #[test]
    fn fifo_order() {
        let mut l = Lsu::new(4);
        l.push(op(0));
        l.push(op(128));
        assert_eq!(l.head().unwrap().addr, 0);
        assert_eq!(l.pop().unwrap().addr, 0);
        assert_eq!(l.pop().unwrap().addr, 128);
        assert_eq!(l.pop(), None);
        assert_eq!(l.processed(), 2);
    }

    #[test]
    fn capacity_check() {
        let mut l = Lsu::new(2);
        assert!(l.can_accept(2));
        assert!(!l.can_accept(3));
        l.push(op(0));
        assert!(l.can_accept(1));
        assert!(!l.can_accept(2));
        l.push(op(1));
        assert_eq!(l.pending(), 2);
    }

    #[test]
    fn admitted_instruction_may_exceed_capacity() {
        let mut l = Lsu::new(1);
        l.push(op(0));
        l.push(op(1)); // second line of the same admitted instruction
        assert_eq!(l.pending(), 2);
        assert!(!l.can_accept(1));
    }
}
