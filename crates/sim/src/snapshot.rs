//! The checkpoint container format: a versioned, checksummed framing
//! around the machine-state payload produced by
//! [`Gpu::snapshot`](crate::Gpu::snapshot) and consumed by
//! [`Gpu::restore`](crate::Gpu::restore).
//!
//! # Container layout (format version 1)
//!
//! | field        | encoding                 | purpose                      |
//! |--------------|--------------------------|------------------------------|
//! | magic        | 8 raw bytes `"CABASNAP"` | file-type identification     |
//! | version      | `u32`                    | format evolution gate        |
//! | config hash  | `u64`                    | machine-shape compatibility  |
//! | design label | length-prefixed string   | design-point compatibility   |
//! | kernel hash  | `u64`                    | program compatibility        |
//! | payload      | machine state            | see `Gpu::payload_save`      |
//! | checksum     | trailing `u64` (LE)      | FNV-1a over everything above |
//!
//! The checksum is verified **before** any field is decoded, so corrupt
//! bytes are rejected with [`RestoreError::ChecksumMismatch`] and never
//! partially loaded into a live machine.
//!
//! # Config-hash tolerance
//!
//! The config hash covers every [`GpuConfig`] knob that shapes machine
//! state or its evolution. Four knob groups are deliberately excluded, so
//! a snapshot can be restored under a *different* setting of each:
//!
//! * `observability` — tracing and metrics are record-only; time-travel
//!   forensics restores a quiet run's snapshot into a fully-traced replay.
//! * `checkpoint_interval` — itself record-only.
//! * `intra_jobs` — worker count is bit-identical by construction, so a
//!   snapshot from a serial run resumes under any sharding and vice versa.
//! * `watchdog_window` — detection-only; it never mutates machine state.

use crate::config::GpuConfig;
use crate::observe::ObservabilityConfig;
use caba_stats::checksum::{self, checksum64};
use caba_stats::snap::{SnapError, SnapshotWriter};
use std::fmt;

/// First bytes of every snapshot container.
pub const MAGIC: &[u8; 8] = b"CABASNAP";

/// Current container format version. Bump on any payload layout change.
pub const FORMAT_VERSION: u32 = 2;

/// Why a snapshot container was rejected by
/// [`Gpu::restore`](crate::Gpu::restore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The bytes do not start with the snapshot magic.
    BadMagic,
    /// The container was written by a different format version.
    VersionMismatch {
        /// Version recorded in the container.
        found: u32,
    },
    /// The trailing checksum does not match the container contents — the
    /// bytes were corrupted (or truncated) after the snapshot was taken.
    ChecksumMismatch,
    /// The restoring GPU's configuration hash differs from the snapshot's
    /// (ignoring the tolerated observability/checkpoint/worker knobs).
    ConfigHashMismatch,
    /// The restoring GPU models a different design point.
    DesignMismatch {
        /// Design label recorded in the container.
        found: String,
    },
    /// The kernel handed to `restore` is not the one the snapshot ran.
    KernelMismatch,
    /// The payload failed to decode — version-skew or an internal bug, as
    /// the checksum already proved the bytes intact.
    Malformed(SnapError),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::BadMagic => write!(f, "not a CABA snapshot (bad magic)"),
            RestoreError::VersionMismatch { found } => write!(
                f,
                "snapshot format version {found} is not the supported version {FORMAT_VERSION}"
            ),
            RestoreError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch: the bytes are corrupt")
            }
            RestoreError::ConfigHashMismatch => write!(
                f,
                "snapshot was taken under an incompatible GPU configuration"
            ),
            RestoreError::DesignMismatch { found } => {
                write!(f, "snapshot was taken on design {found:?}, not this design")
            }
            RestoreError::KernelMismatch => {
                write!(f, "snapshot was taken running a different kernel")
            }
            RestoreError::Malformed(e) => write!(f, "snapshot payload is malformed: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<SnapError> for RestoreError {
    fn from(e: SnapError) -> Self {
        RestoreError::Malformed(e)
    }
}

/// The configuration compatibility hash stored in every container: a
/// checksum of the canonicalized [`GpuConfig`] with the tolerated knobs
/// (see the module docs) reset to fixed values.
pub fn config_hash(cfg: &GpuConfig) -> u64 {
    let mut canon = *cfg;
    canon.observability = ObservabilityConfig::default();
    canon.checkpoint_interval = 0;
    canon.intra_jobs = 1;
    canon.watchdog_window = 0;
    canon.time_skip = true;
    checksum64(format!("{canon:?}").as_bytes())
}

/// Appends the trailing checksum and returns the finished container
/// (the shared [`caba_stats::checksum::seal`] framing).
pub(crate) fn seal(w: SnapshotWriter) -> Vec<u8> {
    checksum::seal(w.into_bytes())
}

/// Verifies the trailing checksum and returns the container body (header
/// plus payload) it covers. Runs before any decoding, so corrupt bytes
/// never reach a live machine — the workspace-wide checksum-before-decode
/// contract of [`caba_stats::checksum::verify_sealed`].
pub(crate) fn verify_sealed(bytes: &[u8]) -> Result<&[u8], RestoreError> {
    checksum::verify_sealed(bytes).ok_or(RestoreError::ChecksumMismatch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_and_verify_round_trip() {
        let mut w = SnapshotWriter::new();
        w.raw(MAGIC);
        w.u64(0xDEAD_BEEF);
        let sealed = seal(w);
        let body = verify_sealed(&sealed).expect("fresh container verifies");
        assert_eq!(&body[..8], MAGIC);
    }

    #[test]
    fn any_flipped_bit_is_caught() {
        let mut w = SnapshotWriter::new();
        w.raw(MAGIC);
        w.str("payload payload payload");
        let sealed = seal(w);
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert_eq!(
                    verify_sealed(&bad),
                    Err(RestoreError::ChecksumMismatch),
                    "flip at byte {byte} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn truncation_is_caught() {
        let mut w = SnapshotWriter::new();
        w.raw(MAGIC);
        w.u64(7);
        let sealed = seal(w);
        for len in 0..sealed.len() {
            assert!(verify_sealed(&sealed[..len]).is_err(), "truncated to {len}");
        }
    }

    #[test]
    fn config_hash_tolerates_observability_knobs() {
        use crate::observe::TraceConfig;
        let base = GpuConfig::small();
        let h = config_hash(&base);

        let mut traced = base;
        traced.observability.trace = Some(TraceConfig::full(1));
        traced.intra_jobs = 4;
        traced.checkpoint_interval = 1000;
        traced.watchdog_window = 0;
        traced.time_skip = !base.time_skip;
        assert_eq!(
            config_hash(&traced),
            h,
            "tolerated knobs must not change the hash"
        );

        let mut resized = base;
        resized.num_sms += 1;
        assert_ne!(
            config_hash(&resized),
            h,
            "machine shape must change the hash"
        );
    }
}
