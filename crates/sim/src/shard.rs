//! The barrier-phased intra-run execution engine.
//!
//! `Gpu::run` advances the machine through alternating serial and parallel
//! phases each cycle:
//!
//! 1. CTA dispatch — serial.
//! 2. **SM phase** — parallel: each worker owns a contiguous slice of SMs
//!    and advances them one cycle against a *deferred-visibility overlay*
//!    (start-of-cycle snapshot of memory / compression map / line store,
//!    plus the SM's own writes), then stages at most one outbound request
//!    per SM into that SM's private ingress lane.
//! 3. Barrier; the coordinator commits every SM's delta in SM index order,
//!    then merges staged requests into the forward crossbar in exact source
//!    order (so crossbar admission, the fault-injection RNG stream, and the
//!    request ledger observe the same sequence as a serial run).
//! 4. Crossbar and partition ingress — serial.
//! 5. **Partition phase** — parallel: workers advance memory partitions
//!    against a frozen memory snapshot and per-partition compression-map
//!    overlays (partitions are address-disjoint), staging at most one
//!    response per partition into its lane.
//! 6. Barrier; commit partition deltas and merge responses in partition
//!    order; response crossbar, fills, tracing, watchdog, audits — serial.
//!
//! Because every cross-SM interaction funnels through the serial merge
//! points, and overlay commits replay write logs in a fixed order,
//! [`crate::RunStats`] are bit-identical for any worker count. With
//! `intra_jobs == 1` the same phase structure runs inline with direct
//! (overlay-free) views — that is the old serial engine, and the golden
//! tests pin the parallel engine against it.

use crate::assist::{LineStore, LineStoreDelta, SharedLineStore};
use crate::config::Design;
use crate::mempart::{PartResp, Partition, SizeOracle};
use crate::sm::{OutReq, SharedState, Sm};
use caba_isa::Kernel;
use caba_mem::{CmapDelta, CompressionMap, FuncMem, MemDelta, SharedCmap, SharedMem};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Per-SM deferred-visibility deltas, committed at the cycle barrier in SM
/// index order.
#[derive(Debug, Default)]
pub(crate) struct SmDelta {
    /// Writes to functional memory (byte-merged at commit).
    pub mem: MemDelta,
    /// Compression-map invalidations and lazily computed entries.
    pub cmap: CmapDelta,
    /// Line-store override changes.
    pub ls: LineStoreDelta,
}

/// Raw pointers into the `Gpu`'s shardable state, captured once per run.
///
/// Element pointers (not container references) are captured so that two
/// workers indexing disjoint elements never materialize overlapping `&mut`
/// references to the containing `Vec`.
#[derive(Clone, Copy)]
pub(crate) struct ShardPtrs {
    pub mem: *mut FuncMem,
    pub cmap: *mut Option<CompressionMap>,
    pub line_store: *mut LineStore,
    pub sms: *mut Sm,
    pub num_sms: usize,
    pub sm_designs: *mut Design,
    pub sm_deltas: *mut SmDelta,
    pub fwd_lanes: *mut VecDeque<OutReq>,
    pub parts: *mut Partition,
    pub num_parts: usize,
    pub part_deltas: *mut CmapDelta,
    pub rsp_lanes: *mut VecDeque<PartResp>,
    pub mem_compressed: bool,
    pub icnt_compressed: bool,
}

// SAFETY: the pointers target fields of one `Gpu` that outlives every worker
// (`std::thread::scope`), and the barrier protocol partitions all access:
// during a parallel phase each worker dereferences only elements of the
// ranges it owns (plus shared `&`-reads of mem/cmap/line_store, which no one
// mutates until the barrier), and between barriers only the coordinator
// touches the machine.
unsafe impl Send for ShardPtrs {}
unsafe impl Sync for ShardPtrs {}

/// Phase selector published through [`PhaseCtl`].
pub(crate) const PHASE_SM: u8 = 0;
/// Memory-partition phase.
pub(crate) const PHASE_PART: u8 = 1;
/// Shut the workers down.
pub(crate) const PHASE_QUIT: u8 = 2;

/// Contiguous shard `[lo, hi)` of `n` items owned by worker `w` of `jobs`.
pub(crate) fn shard_range(n: usize, w: usize, jobs: usize) -> (usize, usize) {
    (n * w / jobs, n * (w + 1) / jobs)
}

/// Generation-counted phase barrier. The coordinator publishes a phase by
/// bumping `gen`; workers run their shard and bump `done`; the coordinator
/// spins (briefly, then yields — friendly to over-subscribed hosts) until
/// every worker reports in.
pub(crate) struct PhaseCtl {
    gen: AtomicU64,
    kind: AtomicU8,
    now: AtomicU64,
    done: AtomicUsize,
    poison: AtomicBool,
}

impl PhaseCtl {
    pub fn new() -> Self {
        PhaseCtl {
            gen: AtomicU64::new(0),
            kind: AtomicU8::new(PHASE_SM),
            now: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            poison: AtomicBool::new(false),
        }
    }

    /// Publishes the next phase to the workers.
    pub fn publish(&self, kind: u8, now: u64) {
        self.done.store(0, Ordering::Relaxed);
        self.now.store(now, Ordering::Relaxed);
        self.kind.store(kind, Ordering::Relaxed);
        self.gen.fetch_add(1, Ordering::Release);
    }

    /// Blocks until `workers` shards finished the published phase.
    ///
    /// # Panics
    ///
    /// Panics when a worker panicked inside its shard (the worker re-raises
    /// its own payload on join, so the original panic is not lost).
    pub fn wait_done(&self, workers: usize) {
        let mut spins = 0u32;
        while self.done.load(Ordering::Acquire) < workers {
            spins += 1;
            if spins > 128 {
                std::thread::yield_now();
            }
        }
        if self.poison.load(Ordering::Relaxed) {
            panic!("an intra-run worker thread panicked");
        }
    }
}

/// Publishes `PHASE_QUIT` on drop so workers always terminate, including
/// when the coordinator unwinds mid-run.
pub(crate) struct QuitGuard<'a>(pub &'a PhaseCtl);

impl Drop for QuitGuard<'_> {
    fn drop(&mut self) {
        self.0.publish(PHASE_QUIT, 0);
    }
}

/// Worker thread body: wait for each published phase, run the owned shard,
/// report completion. Panics inside a shard poison the barrier (so the
/// coordinator aborts the run) and are re-raised from this thread.
pub(crate) fn worker_loop(w: usize, jobs: usize, p: ShardPtrs, ctl: &PhaseCtl, kernel: &Kernel) {
    let (sm_lo, sm_hi) = shard_range(p.num_sms, w, jobs);
    let (pt_lo, pt_hi) = shard_range(p.num_parts, w, jobs);
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        let gen = loop {
            let g = ctl.gen.load(Ordering::Acquire);
            if g != seen {
                break g;
            }
            spins += 1;
            if spins > 128 {
                std::thread::yield_now();
            }
        };
        seen = gen;
        let kind = ctl.kind.load(Ordering::Relaxed);
        if kind == PHASE_QUIT {
            return;
        }
        let now = ctl.now.load(Ordering::Relaxed);
        let result = catch_unwind(AssertUnwindSafe(|| unsafe {
            match kind {
                PHASE_SM => sm_phase_overlay(&p, sm_lo, sm_hi, now, kernel),
                _ => part_phase_overlay(&p, pt_lo, pt_hi, now),
            }
        }));
        match result {
            Ok(()) => {
                ctl.done.fetch_add(1, Ordering::Release);
            }
            Err(payload) => {
                ctl.poison.store(true, Ordering::Relaxed);
                ctl.done.fetch_add(1, Ordering::Release);
                resume_unwind(payload);
            }
        }
    }
}

/// Advances SMs `[lo, hi)` one cycle against overlay views and stages at
/// most one outbound request per SM into its ingress lane.
///
/// # Safety
///
/// Caller must guarantee exclusive access to elements `[lo, hi)` of the SM
/// arrays and that nothing mutates mem/cmap/line_store concurrently.
pub(crate) unsafe fn sm_phase_overlay(
    p: &ShardPtrs,
    lo: usize,
    hi: usize,
    now: u64,
    kernel: &Kernel,
) {
    let mem = &*(p.mem as *const FuncMem);
    let cmap = (*(p.cmap as *const Option<CompressionMap>)).as_ref();
    let ls = &*(p.line_store as *const LineStore);
    for i in lo..hi {
        let sm = &mut *p.sms.add(i);
        if sm.quiesced() {
            sm.idle_tick();
        } else {
            let delta = &mut *p.sm_deltas.add(i);
            let mut shared = SharedState {
                mem: SharedMem::Overlay {
                    base: mem,
                    delta: &mut delta.mem,
                },
                cmap: cmap.map(|c| SharedCmap::Overlay {
                    base: c,
                    delta: &mut delta.cmap,
                }),
                line_store: SharedLineStore::Overlay {
                    base: ls,
                    delta: &mut delta.ls,
                },
                design: &mut *p.sm_designs.add(i),
            };
            sm.cycle(now, kernel, &mut shared);
        }
        if let Some(req) = sm.pop_request() {
            (*p.fwd_lanes.add(i)).push_back(req);
        }
    }
}

/// Advances partitions `[lo, hi)` one cycle (frozen memory snapshot,
/// per-partition compression-map overlay) and stages at most one response
/// per partition into its lane. Quiesced partitions are clock-skipped
/// exactly as in the serial engine.
///
/// # Safety
///
/// Caller must guarantee exclusive access to elements `[lo, hi)` of the
/// partition arrays and that nothing mutates mem/cmap/line_store
/// concurrently.
pub(crate) unsafe fn part_phase_overlay(p: &ShardPtrs, lo: usize, hi: usize, now: u64) {
    let mem = &*(p.mem as *const FuncMem);
    let cmap = (*(p.cmap as *const Option<CompressionMap>)).as_ref();
    let ls = &*(p.line_store as *const LineStore);
    for i in lo..hi {
        let part = &mut *p.parts.add(i);
        if !part.quiesced() {
            let delta = &mut *p.part_deltas.add(i);
            let mut oracle = SizeOracle {
                mem: SharedMem::Frozen(mem),
                cmap: cmap.map(|c| SharedCmap::Overlay { base: c, delta }),
                line_store: SharedLineStore::Frozen(ls),
                mem_compressed: p.mem_compressed,
                icnt_compressed: p.icnt_compressed,
            };
            part.cycle(now, &mut oracle);
        }
        if let Some(resp) = part.pop_response() {
            (*p.rsp_lanes.add(i)).push_back(resp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_and_partition() {
        for n in [1usize, 5, 6, 15, 16] {
            for jobs in 1..=8usize {
                let mut covered = 0;
                let mut prev_hi = 0;
                for w in 0..jobs {
                    let (lo, hi) = shard_range(n, w, jobs);
                    assert_eq!(lo, prev_hi, "shards must be contiguous");
                    assert!(hi >= lo);
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(prev_hi, n);
                assert_eq!(covered, n, "every item owned exactly once");
            }
        }
    }

    #[test]
    fn phase_ctl_round_trip() {
        let ctl = PhaseCtl::new();
        ctl.publish(PHASE_PART, 42);
        assert_eq!(ctl.kind.load(Ordering::Relaxed), PHASE_PART);
        assert_eq!(ctl.now.load(Ordering::Relaxed), 42);
        assert_eq!(ctl.gen.load(Ordering::Relaxed), 1);
        ctl.wait_done(0); // no workers: returns immediately
    }
}
