//! Activity tracing: periodic samples of per-SM issue activity, Fig. 1
//! stall-breakdown deltas, and DRAM bus utilization, plus optional instant
//! events (assist-warp spawn/retire, fault injections) — exportable as
//! Chrome trace-event JSON (`chrome://tracing` / Perfetto).
//!
//! Enable by building the GPU with
//! [`GpuConfig::with_trace`](crate::GpuConfig::with_trace), then write
//! [`ActivityTrace::write_chrome_json`] to a file after `run`.

use crate::observe::TraceConfig;
use caba_stats::{json, IssueBreakdown, StallKind};
use std::io::{self, Write};

/// One sampling interval's activity.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Cycle at the end of the interval.
    pub cycle: u64,
    /// Application instructions issued per SM during the interval.
    pub app_issued: Vec<u64>,
    /// Assist-warp instructions issued per SM during the interval.
    pub assist_issued: Vec<u64>,
    /// Per-SM issue-slot taxonomy deltas (Figure 1 buckets) for the
    /// interval, indexed by SM.
    pub stalls: Vec<IssueBreakdown>,
    /// DRAM data-bus busy cycles (all channels) during the interval.
    pub dram_busy: u64,
    /// Channel-cycles elapsed during the interval.
    pub dram_total: u64,
}

impl Sample {
    /// DRAM utilization within this interval.
    pub fn bw_utilization(&self) -> f64 {
        if self.dram_total == 0 {
            0.0
        } else {
            self.dram_busy as f64 / self.dram_total as f64
        }
    }
}

/// An instant event recorded while tracing with
/// [`TraceConfig::events`](crate::TraceConfig) enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The event taxonomy for [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// An assist warp was deployed into an AWC slot (§3.4).
    AssistSpawn {
        /// Hosting SM.
        sm: usize,
        /// Deployed at high (decompression) priority.
        high_priority: bool,
    },
    /// An assist warp ran to completion and its slot was reclaimed.
    AssistRetire {
        /// Hosting SM.
        sm: usize,
    },
    /// A corrupted compressed fill was detected (and refetched) at the SM
    /// fill boundary (`FaultMode::Recover`).
    FillCorrupt {
        /// Detecting SM.
        sm: usize,
        /// Line base address.
        addr: u64,
    },
    /// The crossbar fault injector dropped a packet.
    XbarDrop {
        /// Recovered by link-level retransmission (`FaultMode::Recover`).
        retransmitted: bool,
    },
    /// The DRAM fault injector held a request back (`dram_delay_rate`).
    DramDelay {
        /// Affected memory partition.
        partition: usize,
    },
}

impl TraceEventKind {
    /// Track name in the Chrome trace.
    fn name(&self) -> &'static str {
        match self {
            TraceEventKind::AssistSpawn { .. } => "assist spawn",
            TraceEventKind::AssistRetire { .. } => "assist retire",
            TraceEventKind::FillCorrupt { .. } => "fill corrupt",
            TraceEventKind::XbarDrop { .. } => "xbar drop",
            TraceEventKind::DramDelay { .. } => "dram delay",
        }
    }

    /// JSON `args` object body (no surrounding braces).
    fn args(&self) -> String {
        match self {
            TraceEventKind::AssistSpawn { sm, high_priority } => {
                format!("\"sm\":{sm},\"high_priority\":{high_priority}")
            }
            TraceEventKind::AssistRetire { sm } => format!("\"sm\":{sm}"),
            TraceEventKind::FillCorrupt { sm, addr } => {
                format!("\"sm\":{sm},\"addr\":\"{addr:#x}\"")
            }
            TraceEventKind::XbarDrop { retransmitted } => {
                format!("\"retransmitted\":{retransmitted}")
            }
            TraceEventKind::DramDelay { partition } => format!("\"partition\":{partition}"),
        }
    }
}

/// A recorded activity trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActivityTrace {
    /// Sampling interval in cycles.
    pub interval: u64,
    /// Samples in cycle order.
    pub samples: Vec<Sample>,
    /// Instant events (empty unless `TraceConfig::events` was set). SM and
    /// partition buffers are drained in index order at each sample tick, so
    /// the sequence is deterministic; it is not globally cycle-sorted
    /// (trace viewers sort by timestamp).
    pub events: Vec<TraceEvent>,
}

impl ActivityTrace {
    /// Streams the trace in Chrome trace-event format: per-SM issue and
    /// stall-breakdown counter tracks, a DRAM bandwidth track, and instant
    /// events. Cycle numbers are reported as microsecond timestamps for
    /// viewer convenience.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_chrome_json<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(b"[\n")?;
        let mut first = true;
        let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
            if !*first {
                w.write_all(b",\n")?;
            }
            *first = false;
            Ok(())
        };
        for s in &self.samples {
            for (sm, (&app, &asst)) in s.app_issued.iter().zip(&s.assist_issued).enumerate() {
                sep(w, &mut first)?;
                write!(
                    w,
                    "{{\"name\":\"SM{sm} issue\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                     \"args\":{{\"app\":{app},\"assist\":{asst}}}}}",
                    s.cycle
                )?;
            }
            for (sm, b) in s.stalls.iter().enumerate() {
                sep(w, &mut first)?;
                write!(
                    w,
                    "{{\"name\":\"SM{sm} stalls\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{",
                    s.cycle
                )?;
                for (i, k) in StallKind::ALL.iter().enumerate() {
                    if i > 0 {
                        w.write_all(b",")?;
                    }
                    write!(w, "\"{}\":{}", json::escape(k.slug()), b.count(*k))?;
                }
                w.write_all(b"}}")?;
            }
            sep(w, &mut first)?;
            write!(
                w,
                "{{\"name\":\"DRAM BW\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                 \"args\":{{\"utilization\":{}}}}}",
                s.cycle,
                json::fmt_f64(s.bw_utilization())
            )?;
        }
        for e in &self.events {
            sep(w, &mut first)?;
            write!(
                w,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":1,\
                 \"args\":{{{}}}}}",
                json::escape(e.kind.name()),
                e.cycle,
                e.kind.args()
            )?;
        }
        w.write_all(b"\n]\n")
    }

    /// [`ActivityTrace::write_chrome_json`] into a `String` (convenience for
    /// small traces; prefer streaming to a file for long runs).
    pub fn to_chrome_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_chrome_json(&mut buf)
            .expect("Vec<u8> writes are infallible");
        String::from_utf8(buf).expect("trace JSON is UTF-8")
    }

    /// Average DRAM utilization across samples (0 when empty).
    pub fn avg_bw_utilization(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.bw_utilization()).sum::<f64>() / self.samples.len() as f64
    }
}

/// Internal recorder attached to a running GPU.
#[derive(Debug)]
pub(crate) struct Tracer {
    pub(crate) interval: u64,
    pub(crate) events_on: bool,
    pub(crate) trace: ActivityTrace,
    pub(crate) last_cycle: u64,
    pub(crate) last_app: Vec<u64>,
    pub(crate) last_assist: Vec<u64>,
    pub(crate) last_stalls: Vec<IssueBreakdown>,
    pub(crate) last_dram_busy: u64,
    pub(crate) last_dram_total: u64,
}

impl Tracer {
    pub(crate) fn new(cfg: TraceConfig, num_sms: usize) -> Self {
        let interval = cfg.interval.max(1);
        Tracer {
            interval,
            events_on: cfg.events,
            trace: ActivityTrace {
                interval,
                samples: Vec::new(),
                events: Vec::new(),
            },
            last_cycle: 0,
            last_app: vec![0; num_sms],
            last_assist: vec![0; num_sms],
            last_stalls: vec![IssueBreakdown::new(); num_sms],
            last_dram_busy: 0,
            last_dram_total: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ActivityTrace {
        let mut b0 = IssueBreakdown::new();
        b0.record(StallKind::IssuedApp);
        b0.record(StallKind::MemoryData);
        let mut b1 = IssueBreakdown::new();
        b1.record(StallKind::Idle);
        b1.record(StallKind::IssuedAssist);
        ActivityTrace {
            interval: 100,
            samples: vec![Sample {
                cycle: 100,
                app_issued: vec![5, 7],
                assist_issued: vec![1, 0],
                stalls: vec![b0, b1],
                dram_busy: 40,
                dram_total: 200,
            }],
            events: vec![
                TraceEvent {
                    cycle: 42,
                    kind: TraceEventKind::AssistSpawn {
                        sm: 1,
                        high_priority: true,
                    },
                },
                TraceEvent {
                    cycle: 60,
                    kind: TraceEventKind::FillCorrupt { sm: 0, addr: 0x1c0 },
                },
            ],
        }
    }

    #[test]
    fn chrome_json_is_valid_and_complete() {
        let t = sample_trace();
        let json_text = t.to_chrome_json();
        caba_stats::json::validate(&json_text).expect("trace JSON parses");
        assert!(json_text.contains("\"SM0 issue\""));
        assert!(json_text.contains("\"SM1 stalls\""));
        assert!(json_text.contains("\"memory-data\":1"));
        assert!(json_text.contains("\"DRAM BW\""));
        assert!(json_text.contains("\"utilization\":0.2"));
        assert!(json_text.contains("\"assist spawn\""));
        assert!(json_text.contains("\"ph\":\"i\""));
        assert!(json_text.contains("\"addr\":\"0x1c0\""));
        assert!((t.avg_bw_utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn writer_and_string_paths_agree() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_chrome_json(&mut buf).expect("write succeeds");
        assert_eq!(String::from_utf8(buf).expect("utf-8"), t.to_chrome_json());
    }

    #[test]
    fn empty_trace() {
        let t = ActivityTrace::default();
        assert_eq!(t.avg_bw_utilization(), 0.0);
        caba_stats::json::validate(&t.to_chrome_json()).expect("empty trace is valid JSON");
    }
}
