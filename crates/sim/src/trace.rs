//! Activity tracing: periodic samples of per-SM issue activity, assist-warp
//! activity, and DRAM bus utilization, exportable as a Chrome-trace JSON
//! (`chrome://tracing` / Perfetto counter tracks).
//!
//! Enable with [`crate::Gpu::enable_tracing`] before `run`, then write
//! [`ActivityTrace::to_chrome_json`] to a file.

/// One sampling interval's activity.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Cycle at the end of the interval.
    pub cycle: u64,
    /// Application instructions issued per SM during the interval.
    pub app_issued: Vec<u64>,
    /// Assist-warp instructions issued per SM during the interval.
    pub assist_issued: Vec<u64>,
    /// DRAM data-bus busy cycles (all channels) during the interval.
    pub dram_busy: u64,
    /// Channel-cycles elapsed during the interval.
    pub dram_total: u64,
}

impl Sample {
    /// DRAM utilization within this interval.
    pub fn bw_utilization(&self) -> f64 {
        if self.dram_total == 0 {
            0.0
        } else {
            self.dram_busy as f64 / self.dram_total as f64
        }
    }
}

/// A recorded activity trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActivityTrace {
    /// Sampling interval in cycles.
    pub interval: u64,
    /// Samples in cycle order.
    pub samples: Vec<Sample>,
}

impl ActivityTrace {
    /// Serializes the trace in Chrome trace-event format (counter events;
    /// one track per SM plus a bandwidth track). Cycle numbers are reported
    /// as microsecond timestamps for viewer convenience.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        let push = |s: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&s);
        };
        for s in &self.samples {
            for (sm, (&app, &asst)) in s.app_issued.iter().zip(&s.assist_issued).enumerate() {
                push(
                    format!(
                        "{{\"name\":\"SM{sm} issue\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                         \"args\":{{\"app\":{app},\"assist\":{asst}}}}}",
                        s.cycle
                    ),
                    &mut out,
                    &mut first,
                );
            }
            push(
                format!(
                    "{{\"name\":\"DRAM BW\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                     \"args\":{{\"utilization\":{:.4}}}}}",
                    s.cycle,
                    s.bw_utilization()
                ),
                &mut out,
                &mut first,
            );
        }
        out.push_str("\n]\n");
        out
    }

    /// Average DRAM utilization across samples (0 when empty).
    pub fn avg_bw_utilization(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.bw_utilization()).sum::<f64>() / self.samples.len() as f64
    }
}

/// Internal recorder attached to a running GPU.
#[derive(Debug)]
pub(crate) struct Tracer {
    pub(crate) interval: u64,
    pub(crate) trace: ActivityTrace,
    pub(crate) last_cycle: u64,
    pub(crate) last_app: Vec<u64>,
    pub(crate) last_assist: Vec<u64>,
    pub(crate) last_dram_busy: u64,
    pub(crate) last_dram_total: u64,
}

impl Tracer {
    pub(crate) fn new(interval: u64, num_sms: usize) -> Self {
        Tracer {
            interval: interval.max(1),
            trace: ActivityTrace {
                interval: interval.max(1),
                samples: Vec::new(),
            },
            last_cycle: 0,
            last_app: vec![0; num_sms],
            last_assist: vec![0; num_sms],
            last_dram_busy: 0,
            last_dram_total: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_is_well_formed_enough() {
        let t = ActivityTrace {
            interval: 100,
            samples: vec![Sample {
                cycle: 100,
                app_issued: vec![5, 7],
                assist_issued: vec![1, 0],
                dram_busy: 40,
                dram_total: 200,
            }],
        };
        let json = t.to_chrome_json();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"SM0 issue\""));
        assert!(json.contains("\"SM1 issue\""));
        assert!(json.contains("\"DRAM BW\""));
        assert!(json.contains("\"app\":5"));
        assert!(json.contains("0.2000"));
        assert!((t.avg_bw_utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = ActivityTrace::default();
        assert_eq!(t.avg_bw_utilization(), 0.0);
        assert!(t.to_chrome_json().contains('['));
    }
}
