//! The assist-warp mechanism (§3.3): launch descriptors, the controller
//! policy interface implemented by `caba-core`, and the per-line stored-form
//! tracking that ties assist-warp compression results to the memory system.
//!
//! The split of responsibilities mirrors the paper's hardware/software
//! co-design: the *mechanism* (deploying assist warps, tracking them in the
//! Assist Warp Table, staging instructions through the Assist Warp Buffer,
//! priority scheduling, killing) lives in the simulator ([`crate::Sm`]);
//! the *policy* (which subroutine to run for which trigger, live-in values,
//! what to do on completion) lives behind [`AssistController`].

use caba_compress::{Algorithm, CompressedLine};
use caba_isa::{Program, Reg};
use caba_mem::{line_base, SharedCmap, SharedMem, LINE_SIZE};
use caba_stats::snap::{SnapError, SnapshotReader, SnapshotState, SnapshotWriter};
use std::collections::HashMap;
use std::sync::Arc;

/// Scheduling priority of an assist warp (§3.2.3): high-priority warps are
/// required for correctness (decompression) and take precedence over parent
/// warps; low-priority warps (compression) are staged through the dedicated
/// two-entry Assist Warp Buffer partition and issue only in idle cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssistPriority {
    /// Blocks the parent; scheduled ahead of parent warps.
    High,
    /// Issues only in otherwise-idle issue slots.
    Low,
}

/// A request to deploy one assist warp.
#[derive(Debug, Clone)]
pub struct AssistLaunch {
    /// The subroutine (an Assist Warp Store entry).
    pub program: Arc<Program>,
    /// Parent warp slot this assist is coupled to.
    pub parent_warp: usize,
    /// Scheduling priority.
    pub priority: AssistPriority,
    /// Live-in register values, broadcast to all lanes (the MOVE-in step of
    /// §3.4 "Communication and Control").
    pub live_in: Vec<(Reg, u64)>,
    /// Initial active mask (the AWT active-mask field of §3.3).
    pub active_mask: u32,
    /// Controller-chosen tag returned on completion.
    pub tag: u64,
}

/// Context for a fill (load response) arriving at the core boundary.
#[derive(Debug, Clone, Copy)]
pub struct FillInfo {
    /// SM receiving the fill.
    pub sm: usize,
    /// A parent warp waiting on the line (the trigger's warp ID).
    pub parent_warp: usize,
    /// Line base address.
    pub addr: u64,
}

/// What to do with an arriving fill.
#[derive(Debug, Clone)]
pub enum FillAction {
    /// Insert and complete waiters after `extra_latency` cycles (dedicated
    /// hardware decompression, or an uncompressed line).
    Complete {
        /// Additional decompression latency.
        extra_latency: u64,
    },
    /// Run an assist warp; waiters complete when it exits.
    Assist(AssistLaunch),
}

/// Context for a store line leaving the core toward L2/memory.
#[derive(Debug, Clone, Copy)]
pub struct StoreInfo {
    /// SM issuing the store.
    pub sm: usize,
    /// The storing warp.
    pub parent_warp: usize,
    /// Line base address.
    pub addr: u64,
}

/// What to do with an outgoing store line.
#[derive(Debug, Clone)]
pub enum StoreAction {
    /// Send uncompressed immediately.
    PassThrough,
    /// Buffer the line and run a (low-priority) compression assist warp;
    /// the line is released when [`AssistController::on_assist_complete`]
    /// returns [`AssistOutcome::StoreRelease`].
    Assist(AssistLaunch),
}

/// Result of an assist warp finishing, as interpreted by the controller.
#[derive(Debug, Clone)]
pub enum AssistOutcome {
    /// A decompression finished: complete the load waiters for `addr`.
    FillComplete {
        /// Line base address whose waiters may now complete.
        addr: u64,
    },
    /// A compression finished: release the buffered store for `addr`. The
    /// stored form (and hence flit/burst counts) was already recorded in the
    /// [`LineStore`] by the controller.
    StoreRelease {
        /// Line base address to release from the store buffer.
        addr: u64,
    },
    /// Nothing for the core to do.
    Nothing,
}

/// Mutable services the SM exposes to the controller during callbacks.
///
/// All shared state is reached through phase-aware views ([`SharedMem`] and
/// friends): during the parallel SM phase these are overlays (start-of-cycle
/// snapshot plus this SM's own writes), during serial phases they are direct.
/// Controller code is identical either way.
pub struct SmServices<'a, 'm> {
    /// Functional global memory (staging regions live here too).
    pub mem: &'a mut SharedMem<'m>,
    /// The reference compression map (present on compressed designs).
    pub cmap: Option<&'a mut SharedCmap<'m>>,
    /// Per-line stored forms.
    pub line_store: &'a mut SharedLineStore<'m>,
    /// Base address of this SM's staging region (assist-warp scratch).
    pub staging_base: u64,
    /// The SM id.
    pub sm_id: usize,
}

/// The assist-warp policy interface, implemented by `caba-core`.
pub trait AssistController {
    /// The (single) compression algorithm this controller implements, or
    /// `None` for multi-algorithm controllers (CABA-BestOfAll).
    fn algorithm(&self) -> Option<Algorithm>;

    /// Selector used to build the reference [`CompressionMap`].
    fn selector(&self) -> caba_mem::func::LineCompressor;

    /// A fill response reached the L1 boundary.
    fn on_fill(&mut self, info: &FillInfo, svc: &mut SmServices<'_, '_>) -> FillAction;

    /// A dirty line is ready to leave the core.
    fn on_store(&mut self, info: &StoreInfo, svc: &mut SmServices<'_, '_>) -> StoreAction;

    /// An assist warp with `tag` ran to completion.
    fn on_assist_complete(&mut self, tag: u64, svc: &mut SmServices<'_, '_>) -> AssistOutcome;

    /// A fresh controller with the same policy but no per-run state, for the
    /// per-SM controller instances the barrier-phased engine hands each
    /// worker. Tags and slot addresses are per-SM namespaces, so forked
    /// controllers behave identically to one shared instance.
    fn fork(&self) -> Box<dyn AssistController + Send>;

    /// Registers each enabled helper routine adds to the per-block
    /// requirement (§3.2.2). Charged per thread at CTA launch.
    fn extra_regs_per_thread(&self) -> u32 {
        8
    }

    /// Serializes controller-internal per-run state (in-flight operations,
    /// slot free lists, tag counters). Stateless controllers keep the no-op
    /// default; stateful ones (the CABA controller in `caba-core`) override
    /// both this and [`AssistController::snap_load`] as an exact pair.
    fn snap_save(&self, _w: &mut SnapshotWriter) {}

    /// Restores state written by [`AssistController::snap_save`].
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes; the default (stateless) impl never fails.
    fn snap_load(&mut self, _r: &mut SnapshotReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }

    /// Every subroutine program this controller can launch. Snapshots store
    /// in-flight assist programs by content hash
    /// ([`Program::content_hash`]); restore resolves the hashes against this
    /// enumeration, so a controller that launches assist warps must list its
    /// full (finite) subroutine set here.
    fn subroutine_programs(&self) -> Vec<Arc<Program>> {
        Vec::new()
    }
}

/// How a line is currently stored in L2/DRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoredForm {
    /// Raw (uncompressed) — e.g. released through the store-buffer overflow
    /// path (§4.2.2 Ï).
    Raw,
    /// Compressed with the given in-line payload.
    Compressed(CompressedLine),
}

/// Tracks the stored form of every line that deviates from the lazily
/// computed reference form (initial data is software-pre-compressed per
/// §4.3.1; CABA writebacks override with whatever the assist warp produced).
#[derive(Debug, Default)]
pub struct LineStore {
    overrides: HashMap<u64, StoredForm>,
}

impl LineStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `addr`'s line is stored raw.
    pub fn set_raw(&mut self, addr: u64) {
        self.overrides.insert(line_base(addr), StoredForm::Raw);
    }

    /// Records an explicit compressed form for `addr`'s line.
    pub fn set_compressed(&mut self, addr: u64, line: CompressedLine) {
        self.overrides
            .insert(line_base(addr), StoredForm::Compressed(line));
    }

    /// Forgets any override for `addr`'s line (falls back to the reference
    /// map).
    pub fn clear(&mut self, addr: u64) {
        self.overrides.remove(&line_base(addr));
    }

    /// The explicit override for `addr`'s line, if any.
    pub fn override_for(&self, addr: u64) -> Option<&StoredForm> {
        self.overrides.get(&line_base(addr))
    }

    /// Number of explicit overrides (diagnostics).
    pub fn overrides(&self) -> usize {
        self.overrides.len()
    }
}

impl SnapshotState for AssistPriority {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(match self {
            AssistPriority::High => 0,
            AssistPriority::Low => 1,
        });
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(AssistPriority::High),
            1 => Ok(AssistPriority::Low),
            t => Err(SnapError::BadTag {
                what: "AssistPriority",
                tag: t as u64,
            }),
        }
    }
}

impl SnapshotState for StoredForm {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            StoredForm::Raw => w.u8(0),
            StoredForm::Compressed(c) => {
                w.u8(1);
                c.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(StoredForm::Raw),
            1 => Ok(StoredForm::Compressed(CompressedLine::load(r)?)),
            t => Err(SnapError::BadTag {
                what: "StoredForm",
                tag: t as u64,
            }),
        }
    }
}

impl SnapshotState for LineStore {
    /// Overrides are serialized in ascending line order (hasher-independent).
    fn save(&self, w: &mut SnapshotWriter) {
        let mut keys: Vec<u64> = self.overrides.keys().copied().collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for k in keys {
            w.u64(k);
            self.overrides[&k].save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let n = r.seq_len("line-store overrides", 9)?;
        let mut ls = LineStore::new();
        for _ in 0..n {
            let k = r.u64()?;
            ls.overrides.insert(k, StoredForm::load(r)?);
        }
        Ok(ls)
    }
}

/// One logged operation against the line store.
#[derive(Debug, Clone)]
enum LsOp {
    SetRaw(u64),
    SetCompressed(u64, CompressedLine),
    Clear(u64),
}

/// A per-SM, per-cycle delta over a frozen [`LineStore`], replayed by the
/// coordinator at the cycle barrier in SM index order.
#[derive(Debug, Default)]
pub struct LineStoreDelta {
    // line base -> local override state; `Some(None)` = cleared this cycle.
    local: HashMap<u64, Option<StoredForm>>,
    log: Vec<LsOp>,
}

impl LineStoreDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replays logged operations into `store` in order and clears the delta.
    pub fn commit(&mut self, store: &mut LineStore) {
        for op in self.log.drain(..) {
            match op {
                LsOp::SetRaw(b) => store.set_raw(b),
                LsOp::SetCompressed(b, c) => store.set_compressed(b, c),
                LsOp::Clear(b) => store.clear(b),
            }
        }
        self.local.clear();
    }
}

/// A view of the line store, parameterized by execution phase.
#[derive(Debug)]
pub enum SharedLineStore<'a> {
    /// Exclusive access (serial phases, unit tests).
    Direct(&'a mut LineStore),
    /// Shared read-only snapshot (partition phase). Writes panic.
    Frozen(&'a LineStore),
    /// Frozen start-of-cycle store plus this SM's private delta.
    Overlay {
        /// The frozen start-of-cycle store.
        base: &'a LineStore,
        /// This SM's private delta.
        delta: &'a mut LineStoreDelta,
    },
}

impl SharedLineStore<'_> {
    /// The effective override for `addr`'s line, if any.
    pub fn override_for(&self, addr: u64) -> Option<&StoredForm> {
        match self {
            SharedLineStore::Direct(ls) => ls.override_for(addr),
            SharedLineStore::Frozen(ls) => ls.override_for(addr),
            SharedLineStore::Overlay { base, delta } => match delta.local.get(&line_base(addr)) {
                Some(local) => local.as_ref(),
                None => base.override_for(addr),
            },
        }
    }

    /// Records that `addr`'s line is stored raw.
    pub fn set_raw(&mut self, addr: u64) {
        let b = line_base(addr);
        match self {
            SharedLineStore::Direct(ls) => ls.set_raw(b),
            SharedLineStore::Frozen(_) => panic!("write through a frozen line-store view"),
            SharedLineStore::Overlay { delta, .. } => {
                delta.log.push(LsOp::SetRaw(b));
                delta.local.insert(b, Some(StoredForm::Raw));
            }
        }
    }

    /// Records an explicit compressed form for `addr`'s line.
    pub fn set_compressed(&mut self, addr: u64, line: CompressedLine) {
        let b = line_base(addr);
        match self {
            SharedLineStore::Direct(ls) => ls.set_compressed(b, line),
            SharedLineStore::Frozen(_) => panic!("write through a frozen line-store view"),
            SharedLineStore::Overlay { delta, .. } => {
                delta.log.push(LsOp::SetCompressed(b, line.clone()));
                delta.local.insert(b, Some(StoredForm::Compressed(line)));
            }
        }
    }

    /// Forgets any override for `addr`'s line (falls back to the reference
    /// map).
    pub fn clear(&mut self, addr: u64) {
        let b = line_base(addr);
        match self {
            SharedLineStore::Direct(ls) => ls.clear(b),
            SharedLineStore::Frozen(_) => panic!("write through a frozen line-store view"),
            SharedLineStore::Overlay { delta, .. } => {
                delta.log.push(LsOp::Clear(b));
                delta.local.insert(b, None);
            }
        }
    }

    /// Size in bytes of `addr`'s line as stored (consulting the override,
    /// then the reference map).
    pub fn stored_size(
        &self,
        mem: &SharedMem<'_>,
        cmap: Option<&mut SharedCmap<'_>>,
        addr: u64,
    ) -> usize {
        match self.override_for(addr) {
            Some(StoredForm::Raw) => LINE_SIZE,
            Some(StoredForm::Compressed(c)) => c.size_bytes(),
            None => match cmap {
                Some(map) => map.compressed_size(mem, addr).unwrap_or(LINE_SIZE),
                None => LINE_SIZE,
            },
        }
    }

    /// The compressed form of `addr`'s line as stored, or `None` when raw /
    /// incompressible.
    pub fn stored_compressed(
        &self,
        mem: &SharedMem<'_>,
        cmap: Option<&mut SharedCmap<'_>>,
        addr: u64,
    ) -> Option<CompressedLine> {
        match self.override_for(addr) {
            Some(StoredForm::Raw) => None,
            Some(StoredForm::Compressed(c)) => Some(c.clone()),
            None => cmap.and_then(|map| map.compressed_clone(mem, addr)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caba_mem::{CompressionMap, FuncMem, LineCompressor};

    #[test]
    fn line_store_override_precedence() {
        let mut mem = FuncMem::new();
        // Compressible content at line 0.
        for i in 0..32u32 {
            mem.write_u32(i as u64 * 4, 0x400 + i);
        }
        let mut cmap = CompressionMap::new(LineCompressor::Fixed(Algorithm::Bdi));
        let mut store = LineStore::new();
        let mem_view = SharedMem::Frozen(&mem);
        let mut cmap_view = SharedCmap::Direct(&mut cmap);
        let mut view = SharedLineStore::Direct(&mut store);

        // No override: reference size (< 128).
        let s = view.stored_size(&mem_view, Some(&mut cmap_view), 0);
        assert!(s < LINE_SIZE);
        assert!(view
            .stored_compressed(&mem_view, Some(&mut cmap_view), 0)
            .is_some());

        // Raw override wins.
        view.set_raw(5); // same line
        assert_eq!(
            view.stored_size(&mem_view, Some(&mut cmap_view), 0),
            LINE_SIZE
        );
        assert!(view
            .stored_compressed(&mem_view, Some(&mut cmap_view), 0)
            .is_none());

        // Explicit compressed override wins over both.
        let c = CompressedLine {
            algorithm: Algorithm::Bdi,
            encoding: 2,
            payload: vec![0u8; 40],
            original_len: LINE_SIZE,
        };
        view.set_compressed(0, c.clone());
        assert_eq!(view.stored_size(&mem_view, Some(&mut cmap_view), 0), 40);
        assert_eq!(
            view.stored_compressed(&mem_view, Some(&mut cmap_view), 0),
            Some(c)
        );

        view.clear(0);
        assert_eq!(store.overrides(), 0);
        assert!(store.override_for(0).is_none());
    }

    #[test]
    fn no_cmap_means_raw() {
        let mem = FuncMem::new();
        let store = LineStore::new();
        let mem_view = SharedMem::Frozen(&mem);
        let view = SharedLineStore::Frozen(&store);
        assert_eq!(view.stored_size(&mem_view, None, 0), LINE_SIZE);
        assert!(view.stored_compressed(&mem_view, None, 0).is_none());
    }

    #[test]
    fn line_store_overlay_defers_until_commit() {
        let mut store = LineStore::new();
        store.set_raw(0);
        let mut delta = LineStoreDelta::new();
        {
            let mut view = SharedLineStore::Overlay {
                base: &store,
                delta: &mut delta,
            };
            // Own writes visible immediately; base override still visible.
            assert_eq!(view.override_for(0), Some(&StoredForm::Raw));
            view.clear(0);
            assert_eq!(view.override_for(0), None, "own clear visible in view");
            view.set_raw(128);
            assert_eq!(view.override_for(128), Some(&StoredForm::Raw));
        }
        // Base untouched until commit.
        assert_eq!(store.override_for(0), Some(&StoredForm::Raw));
        assert_eq!(store.override_for(128), None);
        delta.commit(&mut store);
        assert_eq!(store.override_for(0), None);
        assert_eq!(store.override_for(128), Some(&StoredForm::Raw));
    }
}
