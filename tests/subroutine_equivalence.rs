//! Cross-crate property tests: the CABA assist-warp subroutines (ISA
//! programs from `caba-core`) must be *bit-equivalent* to the reference
//! compressor (`caba-compress`) when executed under the functional ISA
//! semantics (`caba-sim`) — for every BDI encoding, on arbitrary data.
//!
//! This is the load-bearing guarantee behind the simulator's CABA results:
//! the bandwidth savings measured in the figures come from payloads the
//! assist warps themselves produced and consumed.

use caba::compress::bdi::{Bdi, BdiEncoding};
use caba::compress::{CompressedLine, Compressor, LINE_SIZE};
use caba::core::subroutines::{
    active_mask_for, bdi_compress, bdi_decompress, lanes_for, CABA_COMPRESS_ENCODINGS, HDR_OFF,
    PAYLOAD_OFF,
};
use caba::isa::{Program, Reg};
use caba::mem::{FuncMem, SharedMem};
use caba::sim::exec::{execute, ThreadCtx};
use caba::sim::Warp;
use caba::stats::{prop, Rng64};

const LINE_ADDR: u64 = 0x2_0000;
const SLOT_ADDR: u64 = 0x9_0000;

/// Interprets `program` to completion on one warp (functional semantics
/// only — no timing), with broadcast live-in registers.
fn run_subroutine(program: &Program, live_in: &[(Reg, u64)], mask: u32, mem: &mut FuncMem) {
    let mut warp = Warp::new(program.max_reg().max(1) as usize, mask);
    for &(r, v) in live_in {
        for lane in 0..32 {
            warp.set_reg(r, lane, v);
        }
    }
    let ctx = ThreadCtx {
        block_dim: 32,
        grid_dim: 1,
        params: &[],
        ctaid: 0,
        warp_in_block: 0,
        shared_base: 0x8000_0000,
    };
    let mut steps = 0;
    let mut mem = SharedMem::Direct(mem);
    while !warp.done {
        let instr = *program
            .fetch(warp.pc())
            .expect("subroutines terminate with Exit");
        execute(&mut warp, &instr, &ctx, &mut mem);
        steps += 1;
        assert!(steps < 10_000, "subroutine did not terminate");
    }
}

/// Runs the compression subroutine for `enc` over `line`; returns the
/// header flag and (on success) the payload it wrote.
fn compress_via_assist(line: &[u8], enc: BdiEncoding) -> Option<Vec<u8>> {
    let mut mem = FuncMem::new();
    mem.load_image(LINE_ADDR, line);
    let program = bdi_compress(enc);
    run_subroutine(
        &program,
        &[(Reg(0), LINE_ADDR), (Reg(1), SLOT_ADDR)],
        active_mask_for(lanes_for(enc)),
        &mut mem,
    );
    let ok = mem.read_u32((SLOT_ADDR as i64 + HDR_OFF) as u64) == 1;
    ok.then(|| {
        mem.read_bytes(
            (SLOT_ADDR as i64 + PAYLOAD_OFF) as u64,
            enc.compressed_size(LINE_SIZE),
        )
    })
}

/// Runs the decompression subroutine over a compressed line's payload and
/// returns the bytes it wrote at the line address.
fn decompress_via_assist(c: &CompressedLine) -> Vec<u8> {
    let enc = BdiEncoding::from_id(c.encoding).expect("valid encoding");
    let mut mem = FuncMem::new();
    mem.load_image(SLOT_ADDR, &c.payload);
    let program = bdi_decompress(enc);
    run_subroutine(
        &program,
        &[(Reg(0), SLOT_ADDR), (Reg(1), LINE_ADDR)],
        active_mask_for(lanes_for(enc)),
        &mut mem,
    );
    mem.read_bytes(LINE_ADDR, LINE_SIZE)
}

/// Produces lines across four regimes: narrow 4-byte deltas, narrow signed
/// 8-byte deltas, sparse small values, and arbitrary bytes (the last
/// usually fails compression — the subroutine must report failure, never
/// emit a wrong payload).
fn random_compressible_line(rng: &mut Rng64) -> Vec<u8> {
    match rng.range_u64(4) {
        0 => {
            let base = rng.next_u64() as u32;
            let mut line = Vec::new();
            for _ in 0..LINE_SIZE / 4 {
                let d = rng.range_u64(100) as u32;
                line.extend_from_slice(&base.wrapping_add(d).to_le_bytes());
            }
            line
        }
        1 => {
            let base = rng.next_u64();
            let mut line = Vec::new();
            for _ in 0..LINE_SIZE / 8 {
                let d = rng.range_u64(200) as i64 - 100;
                line.extend_from_slice(&base.wrapping_add_signed(d).to_le_bytes());
            }
            line
        }
        2 => {
            let mut line = Vec::new();
            for _ in 0..LINE_SIZE / 4 {
                let w = if rng.chance(0.2) {
                    rng.range_u64(64) as u32
                } else {
                    0u32
                };
                line.extend_from_slice(&w.to_le_bytes());
            }
            line
        }
        _ => prop::bytes(rng, LINE_SIZE),
    }
}

/// The compression assist warp's verdict and payload match the reference
/// compressor exactly, for every single-pass encoding.
#[test]
fn compression_subroutine_matches_reference() {
    prop::check(0xC0395, 64, |rng| {
        let line = random_compressible_line(rng);
        let bdi = Bdi::new();
        for enc in CABA_COMPRESS_ENCODINGS {
            let reference = bdi.compress_with(&line, enc);
            let assist = compress_via_assist(&line, enc);
            match (reference, assist) {
                (Some(r), Some(a)) => assert_eq!(r.payload, a, "{enc:?}"),
                (None, None) => {}
                (r, a) => panic!(
                    "verdict mismatch for {:?}: reference={:?} assist={:?}",
                    enc,
                    r.map(|c| c.size_bytes()),
                    a.map(|p| p.len())
                ),
            }
        }
    });
}

/// The decompression assist warp reconstructs the original line exactly,
/// for every encoding the reference compressor may choose.
#[test]
fn decompression_subroutine_reconstructs_line() {
    prop::check(0xDEC0395, 64, |rng| {
        let line = random_compressible_line(rng);
        if let Some(c) = Bdi::new().compress(&line) {
            let out = decompress_via_assist(&c);
            assert_eq!(out, line);
        }
    });
}

/// The paper's Figure 5 line, end to end through the assist warps: compress
/// with the subroutine, decompress with the subroutine, recover the line.
#[test]
fn figure5_line_round_trips_through_assist_warps() {
    // The figure uses a 64-byte line; the simulator's lines are 128 bytes,
    // so tile the pattern twice (preserving the B8D1 structure).
    let values: [u64; 8] = [
        0x00,
        0x8_0001_d000,
        0x10,
        0x8_0001_d008,
        0x20,
        0x8_0001_d010,
        0x30,
        0x8_0001_d018,
    ];
    let mut line = Vec::new();
    for _ in 0..2 {
        for v in values {
            line.extend_from_slice(&v.to_le_bytes());
        }
    }
    let payload = compress_via_assist(&line, BdiEncoding::B8D1).expect("compresses");
    let reference = Bdi::new()
        .compress_with(&line, BdiEncoding::B8D1)
        .expect("reference compresses");
    assert_eq!(payload, reference.payload);
    let out = decompress_via_assist(&reference);
    assert_eq!(out, line);
}

/// Deterministic smoke check across many random compressible lines (beyond
/// proptest's sampled cases).
#[test]
fn thousand_line_sweep() {
    let mut rng = Rng64::new(0xCABA);
    let bdi = Bdi::new();
    let mut compressed = 0;
    for _ in 0..1000 {
        let base = rng.next_u32();
        let range = [4u64, 50, 120, 4000][rng.range_u64(4) as usize];
        let mut line = Vec::new();
        for _ in 0..LINE_SIZE / 4 {
            line.extend_from_slice(&base.wrapping_add(rng.range_u64(range) as u32).to_le_bytes());
        }
        if let Some(c) = bdi.compress(&line) {
            compressed += 1;
            assert_eq!(decompress_via_assist(&c), line);
        }
    }
    assert!(compressed > 500, "most lines should compress: {compressed}");
}
