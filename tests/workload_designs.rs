//! Workspace-level integration: the synthetic workload suite run under the
//! evaluated design points, checking the paper's qualitative claims hold on
//! the small test machine.

use caba::compress::Algorithm;
use caba::core::CabaController;
use caba::sim::occupancy::occupancy;
use caba::sim::{Design, GpuConfig};
use caba::workloads::{all_apps, app, eval_apps, run_app, AppClass};

#[test]
fn suite_composition_matches_figure1() {
    let apps = all_apps();
    let mem = apps
        .iter()
        .filter(|a| a.class == AppClass::MemoryBound)
        .count();
    assert!(mem >= 17, "at least 17 memory-bound apps, got {mem}");
    assert!(apps.len() >= 27);
    assert!(eval_apps().len() >= 15);
}

#[test]
fn compressed_designs_beat_base_on_compressible_memory_bound_app() {
    let a = app("PVC").expect("known app");
    let cfg = GpuConfig::small();
    let base = run_app(&a, cfg, Design::Base, 0.25).unwrap();
    let hw = run_app(
        &a,
        cfg,
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
        0.25,
    )
    .unwrap();
    let caba = run_app(&a, cfg, Design::Caba(Box::new(CabaController::bdi())), 0.25).unwrap();
    assert!(
        hw.cycles < base.cycles,
        "HW {} vs Base {}",
        hw.cycles,
        base.cycles
    );
    assert!(
        caba.cycles < base.cycles,
        "CABA {} vs Base {}",
        caba.cycles,
        base.cycles
    );
    assert!(caba.dram_bursts < base.dram_bursts);
    assert!(caba.assist_launches > 0);
}

#[test]
fn incompressible_app_is_not_hurt_by_hw_compression() {
    // §5: "applications without compressible data do not gain any
    // performance ... and do not incur any degradation".
    let a = app("SCP").expect("known app");
    let cfg = GpuConfig::small();
    let base = run_app(&a, cfg, Design::Base, 0.2).unwrap();
    let hw = run_app(
        &a,
        cfg,
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
        0.2,
    )
    .unwrap();
    let ratio = hw.cycles as f64 / base.cycles as f64;
    assert!(ratio < 1.1, "HW-BDI degraded SCP by {ratio}");
}

#[test]
fn figure2_average_unallocated_registers_in_paper_ballpark() {
    // Paper: "on average 24% of the register file remains unallocated".
    let cfg = GpuConfig::isca2015();
    let fracs: Vec<f64> = all_apps()
        .iter()
        .map(|a| occupancy(&a.kernel(1.0), &cfg, 0).unallocated_fraction(&cfg))
        .collect();
    let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
    assert!(
        (0.10..0.45).contains(&avg),
        "average unallocated fraction {avg} out of ballpark"
    );
    // And some apps leave a large fraction unallocated (the opportunity).
    assert!(fracs.iter().any(|&f| f > 0.3));
}

#[test]
fn md_cache_hit_rate_is_high_for_streaming_app() {
    // §4.3.2: the 8 KB MD cache achieves high hit rates (85% average, >99%
    // for many applications).
    let a = app("CONS").expect("known app");
    let s = run_app(
        &a,
        GpuConfig::small(),
        Design::HwFull {
            alg: Algorithm::Bdi,
            ideal: false,
        },
        0.25,
    )
    .unwrap();
    assert!(s.md_lookups > 0);
    assert!(s.md_hit_rate() > 0.9, "hit rate {}", s.md_hit_rate());
}
